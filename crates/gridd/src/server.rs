//! The daemon: a multi-threaded TCP server emulating the paper's
//! contended grid services on a real socket.
//!
//! One listener thread accepts connections into a *bounded* backlog
//! channel (a full backlog drops the connection on the floor, exactly
//! the refusal an overloaded schedd hands real clients); a worker pool
//! sized by [`GriddConfig::threads`] (or `EG_GRIDD_THREADS`) drains it.
//! Every connection gets read/write deadlines, so a stalled peer can
//! never pin a worker.
//!
//! ## Contention physics
//!
//! The schedd is a token bucket of [`GriddConfig::slots`] service
//! slots. A `submit` takes a slot for [`GriddConfig::service`] of real
//! wall-clock; with no slot free the submission is refused and the
//! schedd's *overload pressure* rises — enough consecutive overloaded
//! submissions ([`GriddConfig::crash_overloads`]) crash it, losing
//! every in-flight job and taking the service down for
//! [`GriddConfig::downtime`]. `df` reports the free-slot count (zero
//! while down) and never blocks: it is the carrier-sense channel, so
//! an Ethernet client can defer instead of becoming part of the
//! stampede that crashes the schedd. Aloha clients discover the
//! contention by failing.
//!
//! ## Fault plans
//!
//! The same [`simgrid::faults::FaultPlan`] JSON that drives the
//! simulator drives the daemon, mapped onto wall-clock windows
//! relative to server start: `schedd-kill` forces downtime (closed
//! early by `schedd-restart`), `enospc` fails `put`, `free-space-lie`
//! skews `df`, `black-hole` makes the file server swallow `put`/`get`
//! without answering, `msg-loss` resets connections before the reply,
//! and `latency-spike` stalls responses. Physics kinds configure
//! constants (`schedd-crash-on-starvation`'s backlog bounds the accept
//! queue); `clock-skew`/`cmd-fail-first` are VM-side and ignored here.

use crate::proto::{read_frame, write_frame, ErrCode, Request, Response};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::{Series, SeriesSet, SimRng};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. `Default` gives a small, crashy schedd good
/// for exercising the disciplines quickly.
#[derive(Clone, Debug)]
pub struct GriddConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Worker pool size. `0`: use `EG_GRIDD_THREADS`, default 4.
    pub threads: usize,
    /// Bounded accept backlog; a full backlog drops new connections.
    pub backlog: usize,
    /// Schedd service-slot pool (token bucket capacity).
    pub slots: u64,
    /// How long one submission holds a slot.
    pub service: Duration,
    /// Consecutive no-slot submissions that crash the schedd.
    pub crash_overloads: u32,
    /// How long a crashed schedd stays down (also the default for
    /// `schedd-kill` specs without an explicit downtime).
    pub downtime: Duration,
    /// Per-connection read/write deadline.
    pub deadline: Duration,
    /// File-server capacity in bytes; `put` beyond it reports ENOSPC.
    pub disk_bytes: usize,
    /// The adversarial schedule (and physics constants).
    pub plan: FaultPlan,
}

impl Default for GriddConfig {
    fn default() -> GriddConfig {
        GriddConfig {
            listen: "127.0.0.1:0".into(),
            threads: 0,
            backlog: 64,
            slots: 4,
            service: Duration::from_millis(150),
            crash_overloads: 6,
            downtime: Duration::from_millis(1500),
            deadline: Duration::from_secs(10),
            disk_bytes: 16 << 20,
            plan: FaultPlan::default(),
        }
    }
}

impl GriddConfig {
    /// Resolve the worker-pool size: explicit config, else
    /// `EG_GRIDD_THREADS`, else 4.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::env::var("EG_GRIDD_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(4)
    }
}

/// One half-open wall-clock window (relative to server start).
#[derive(Clone, Copy, Debug)]
struct Window {
    start: Duration,
    end: Duration,
}

impl Window {
    fn contains(&self, t: Duration) -> bool {
        t >= self.start && t < self.end
    }
}

/// The plan compiled onto the wall clock.
#[derive(Default)]
struct Windows {
    /// Forced schedd downtime (`schedd-kill`, truncated by restarts).
    sched_down: Vec<Window>,
    /// `put` fails with ENOSPC.
    enospc: Vec<Window>,
    /// `df` estimates are skewed by this many slots.
    df_lie: Vec<(Window, i64)>,
    /// File server swallows requests without answering.
    black_hole: Vec<Window>,
    /// Connections reset with this probability before the reply.
    msg_loss: Vec<(Window, f64)>,
    /// Responses delayed by this much.
    latency: Vec<(Window, Duration)>,
}

const FOREVER: Duration = Duration::from_secs(u32::MAX as u64);

/// Every wall-clock occurrence of a (possibly repeating) spec.
fn occurrences(spec: &FaultSpec) -> Vec<Duration> {
    let first = Duration::from_micros(spec.at.as_micros());
    match spec.every {
        None => vec![first],
        Some(every) => {
            let period = every.to_std();
            (0..spec.count.max(1) as u64)
                .map(|k| first + period * k as u32)
                .collect()
        }
    }
}

impl Windows {
    fn compile(plan: &FaultPlan, default_downtime: Duration) -> Windows {
        let mut w = Windows::default();
        // schedd-kill opens a downtime window; the next schedd-restart
        // occurrence inside it closes it early. Collect all kill/
        // restart instants first, then pair them up in time order.
        let mut kills: Vec<(Duration, Duration)> = Vec::new(); // (at, downtime)
        let mut restarts: Vec<Duration> = Vec::new();
        // black-hole enables open a window closed by the next disable.
        let mut bh_events: Vec<(Duration, bool)> = Vec::new();
        for spec in &plan.specs {
            match &spec.kind {
                FaultKind::ScheddKill { downtime } => {
                    let d = downtime.map(|d| d.to_std()).unwrap_or(default_downtime);
                    for at in occurrences(spec) {
                        kills.push((at, d));
                    }
                }
                FaultKind::ScheddRestart => restarts.extend(occurrences(spec)),
                FaultKind::EnospcWindow { duration } => {
                    for at in occurrences(spec) {
                        w.enospc.push(Window {
                            start: at,
                            end: at + duration.to_std(),
                        });
                    }
                }
                FaultKind::FreeSpaceLie {
                    delta_bytes,
                    duration,
                } => {
                    for at in occurrences(spec) {
                        w.df_lie.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            *delta_bytes,
                        ));
                    }
                }
                FaultKind::ServerBlackHole { enable, .. } => {
                    for at in occurrences(spec) {
                        bh_events.push((at, *enable));
                    }
                }
                FaultKind::MsgLoss {
                    probability,
                    duration,
                    ..
                } => {
                    for at in occurrences(spec) {
                        w.msg_loss.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            *probability,
                        ));
                    }
                }
                FaultKind::LatencySpike {
                    extra, duration, ..
                } => {
                    for at in occurrences(spec) {
                        w.latency.push((
                            Window {
                                start: at,
                                end: at + duration.to_std(),
                            },
                            extra.to_std(),
                        ));
                    }
                }
                // VM-side or construction-time physics — not windows.
                FaultKind::ClockSkew { .. }
                | FaultKind::CmdFailFirst { .. }
                | FaultKind::ScheddCrashOnStarvation { .. }
                | FaultKind::EnospcAtCapacity { .. }
                | FaultKind::BlackHoleServers { .. } => {}
            }
        }
        restarts.sort();
        for (at, downtime) in kills {
            let natural_end = at + downtime;
            let end = restarts
                .iter()
                .copied()
                .find(|&r| r > at && r < natural_end)
                .unwrap_or(natural_end);
            w.sched_down.push(Window { start: at, end });
        }
        bh_events.sort_by_key(|(at, _)| *at);
        let mut open: Option<Duration> = None;
        for (at, enable) in bh_events {
            match (enable, open) {
                (true, None) => open = Some(at),
                (false, Some(start)) => {
                    w.black_hole.push(Window { start, end: at });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            w.black_hole.push(Window {
                start,
                end: FOREVER,
            });
        }
        w
    }

    fn sched_forced_down(&self, t: Duration) -> bool {
        self.sched_down.iter().any(|w| w.contains(t))
    }

    fn enospc_active(&self, t: Duration) -> bool {
        self.enospc.iter().any(|w| w.contains(t))
    }

    fn df_delta(&self, t: Duration) -> i64 {
        self.df_lie
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, d)| *d)
            .sum()
    }

    fn black_hole_until(&self, t: Duration) -> Option<Duration> {
        self.black_hole
            .iter()
            .find(|w| w.contains(t))
            .map(|w| w.end)
    }

    fn loss_probability(&self, t: Duration) -> f64 {
        self.msg_loss
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }

    fn extra_latency(&self, t: Duration) -> Duration {
        self.latency
            .iter()
            .filter(|(w, _)| w.contains(t))
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Per-client counters, dumped by the `stats` verb.
#[derive(Clone, Default)]
struct ClientCounters {
    submit_ok: u64,
    submit_busy: u64,
    submit_down: u64,
    submit_lost: u64,
    put_ok: u64,
    put_err: u64,
    get_ok: u64,
    get_err: u64,
    df_calls: u64,
    resets: u64,
}

/// Mutable daemon state shared by the workers.
struct Shared {
    free_slots: u64,
    overload: u32,
    crash_epoch: u64,
    down_until: Option<Instant>,
    crashes: u64,
    jobs: u64,
    files: HashMap<String, Vec<u8>>,
    disk_used: usize,
    clients: HashMap<u32, ClientCounters>,
    rng: SimRng,
}

impl Shared {
    fn client(&mut self, id: u32) -> &mut ClientCounters {
        self.clients.entry(id).or_default()
    }
}

struct Inner {
    cfg: GriddConfig,
    windows: Windows,
    start: Instant,
    state: Mutex<Shared>,
    stop: AtomicBool,
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`GriddHandle::shutdown`].
pub struct GriddHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A point-in-time copy of one client's counters (see the `stats`
/// verb for the JSON form).
#[derive(Clone, Debug, Default)]
pub struct ClientSnapshot {
    /// Client index the counters belong to.
    pub client: u32,
    /// Jobs accepted and serviced to completion.
    pub submit_ok: u64,
    /// Submissions refused for lack of a free slot.
    pub submit_busy: u64,
    /// Submissions rejected while the schedd was down.
    pub submit_down: u64,
    /// Jobs accepted but lost to a mid-service crash.
    pub submit_lost: u64,
    /// Carrier-sense reads (`df`/`sense`).
    pub df_calls: u64,
    /// Connections reset by injected message loss.
    pub resets: u64,
    /// Successful file stores.
    pub put_ok: u64,
    /// Failed file stores (ENOSPC, windows included).
    pub put_err: u64,
    /// Successful file reads.
    pub get_ok: u64,
    /// Failed file reads.
    pub get_err: u64,
}

impl GriddHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time per-client counters plus the global schedd crash
    /// count — the structured twin of the `stats` verb.
    pub fn snapshot(&self) -> (Vec<ClientSnapshot>, u64) {
        let st = self.inner.state.lock().expect("state lock");
        let mut clients: Vec<ClientSnapshot> = st
            .clients
            .iter()
            .map(|(&client, c)| ClientSnapshot {
                client,
                submit_ok: c.submit_ok,
                submit_busy: c.submit_busy,
                submit_down: c.submit_down,
                submit_lost: c.submit_lost,
                df_calls: c.df_calls,
                resets: c.resets,
                put_ok: c.put_ok,
                put_err: c.put_err,
                get_ok: c.get_ok,
                get_err: c.get_err,
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        (clients, st.crashes)
    }

    /// Stop accepting, drain the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the pool, and serve until [`GriddHandle::shutdown`].
pub fn start(cfg: GriddConfig) -> io::Result<GriddHandle> {
    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    // The plan's starvation physics, when present, bounds the accept
    // queue the way the sim's schedd backlog bounds submissions.
    let backlog = cfg
        .plan
        .crash_physics()
        .map(|(_, backlog)| backlog.max(1))
        .unwrap_or(cfg.backlog);
    let threads = cfg.resolved_threads();
    let windows = Windows::compile(&cfg.plan, cfg.downtime);
    let rng = cfg.plan.rng();
    let inner = Arc::new(Inner {
        state: Mutex::new(Shared {
            free_slots: cfg.slots,
            overload: 0,
            crash_epoch: 0,
            down_until: None,
            crashes: 0,
            jobs: 0,
            files: HashMap::new(),
            disk_used: 0,
            clients: HashMap::new(),
            rng,
        }),
        cfg,
        windows,
        start: Instant::now(),
        stop: AtomicBool::new(false),
    });

    let (tx, rx) = sync_channel::<TcpStream>(backlog);
    let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = rx.clone();
        let inner = inner.clone();
        workers.push(std::thread::spawn(move || loop {
            let conn = {
                let guard = rx.lock().expect("receiver lock");
                guard.recv()
            };
            match conn {
                Ok(stream) => serve_connection(&inner, stream),
                Err(_) => return, // listener gone: drain complete
            }
        }));
    }

    let accept_inner = inner.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_inner.stop.load(Ordering::SeqCst) {
                return; // tx drops here; workers drain and exit
            }
            let Ok(stream) = conn else { continue };
            // Bounded backlog: beyond it the connection is dropped,
            // which the client observes as a reset — the overloaded
            // schedd refusing service.
            if let Err(TrySendError::Full(stream)) = tx.try_send(stream) {
                drop(stream);
            }
        }
    });

    Ok(GriddHandle {
        addr,
        inner,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// Serve one connection: request/response frames until EOF, error, or
/// deadline. Deadlines bound every read and write.
fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.cfg.deadline));
    let _ = stream.set_write_timeout(Some(inner.cfg.deadline));
    loop {
        let Ok(payload) = read_frame(&mut stream) else {
            return; // EOF, deadline, or reset: drop the conn
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Err {
                    code: ErrCode::Bad,
                    msg: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        let elapsed = inner.start.elapsed();
        // Injected stalls delay the reply; injected loss resets the
        // connection *instead of* replying — a dropped message.
        let extra = inner.windows.extra_latency(elapsed);
        if !extra.is_zero() {
            std::thread::sleep(extra.min(inner.cfg.deadline));
        }
        let p = inner.windows.loss_probability(elapsed);
        if p > 0.0 {
            let lost = {
                let mut st = inner.state.lock().expect("state lock");
                let lost = st.rng.chance(p);
                if lost {
                    if let Some(c) = req.client() {
                        st.client(c).resets += 1;
                    }
                }
                lost
            };
            if lost {
                return; // reset: client sees a dead connection
            }
        }
        match handle(inner, &req, elapsed) {
            Some(resp) => {
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
            }
            None => return, // black-holed: swallow, never answer
        }
    }
}

/// Dispatch one request. `None` means "do not answer" (black hole).
fn handle(inner: &Inner, req: &Request, elapsed: Duration) -> Option<Response> {
    match req {
        Request::Submit { client, job } => Some(submit(inner, *client, job, elapsed)),
        Request::Put { client, name, data } => file_put(inner, *client, name, data, elapsed),
        Request::Get { client, name } => file_get(inner, *client, name, elapsed),
        Request::Df { client } => Some(df(inner, *client, elapsed)),
        Request::Stats => Some(Response::Stats {
            json: stats_json(inner),
        }),
    }
}

fn sched_down(inner: &Inner, st: &mut Shared, elapsed: Duration) -> bool {
    if inner.windows.sched_forced_down(elapsed) {
        return true;
    }
    match st.down_until {
        Some(until) if Instant::now() < until => true,
        Some(_) => {
            // Downtime over: restart with a full slot pool.
            st.down_until = None;
            st.free_slots = inner.cfg.slots;
            st.overload = 0;
            false
        }
        None => false,
    }
}

fn submit(inner: &Inner, client: u32, job: &str, elapsed: Duration) -> Response {
    let (epoch, job_id) = {
        let mut st = inner.state.lock().expect("state lock");
        if sched_down(inner, &mut st, elapsed) {
            st.client(client).submit_down += 1;
            return Response::Err {
                code: ErrCode::Down,
                msg: "schedd is down".into(),
            };
        }
        if st.free_slots == 0 {
            st.overload += 1;
            if st.overload >= inner.cfg.crash_overloads {
                // The stampede starved the schedd: it crashes, every
                // in-flight job is lost, and the service goes dark.
                st.overload = 0;
                st.crash_epoch += 1;
                st.crashes += 1;
                st.down_until = Some(Instant::now() + inner.cfg.downtime);
                st.client(client).submit_down += 1;
                return Response::Err {
                    code: ErrCode::Down,
                    msg: "schedd crashed under load".into(),
                };
            }
            st.client(client).submit_busy += 1;
            return Response::Err {
                code: ErrCode::Busy,
                msg: "no free service slots".into(),
            };
        }
        st.free_slots -= 1;
        // A grant relieves pressure but does not erase it: sustained
        // overload still accumulates toward a crash even while slots
        // churn.
        st.overload = st.overload.saturating_sub(1);
        st.jobs += 1;
        (st.crash_epoch, format!("{job}@{}", st.jobs))
    };
    // Hold the slot for the service time — this is where concurrent
    // aggressive clients actually collide on a real clock.
    std::thread::sleep(inner.cfg.service);
    let mut st = inner.state.lock().expect("state lock");
    st.free_slots = (st.free_slots + 1).min(inner.cfg.slots);
    if st.crash_epoch != epoch {
        // A crash happened while this job was in service: it is gone.
        st.client(client).submit_lost += 1;
        return Response::Err {
            code: ErrCode::Down,
            msg: "job lost in schedd crash".into(),
        };
    }
    st.client(client).submit_ok += 1;
    Response::Ok { info: job_id }
}

fn df(inner: &Inner, client: u32, elapsed: Duration) -> Response {
    let mut st = inner.state.lock().expect("state lock");
    st.client(client).df_calls += 1;
    let free = if sched_down(inner, &mut st, elapsed) {
        0
    } else {
        st.free_slots
    };
    // An active free-space lie skews the estimate — the attack on
    // carrier sense itself.
    let delta = inner.windows.df_delta(elapsed);
    let lied = (free as i64).saturating_add(delta).max(0) as u64;
    Response::Free { slots: lied }
}

/// Stall through a black-hole window (bounded by the connection
/// deadline so a worker is never pinned past it), then swallow.
fn black_hole_stall(inner: &Inner, elapsed: Duration) -> bool {
    if let Some(end) = inner.windows.black_hole_until(elapsed) {
        let remaining = end.saturating_sub(elapsed);
        std::thread::sleep(remaining.min(inner.cfg.deadline));
        return true;
    }
    false
}

fn file_put(
    inner: &Inner,
    client: u32,
    name: &str,
    data: &[u8],
    elapsed: Duration,
) -> Option<Response> {
    if black_hole_stall(inner, elapsed) {
        return None;
    }
    let mut st = inner.state.lock().expect("state lock");
    if inner.windows.enospc_active(elapsed) {
        st.client(client).put_err += 1;
        return Some(Response::Err {
            code: ErrCode::Enospc,
            msg: "no space left on device (fault window)".into(),
        });
    }
    let old = st.files.get(name).map(|d| d.len()).unwrap_or(0);
    let used_after = st.disk_used - old + data.len();
    if used_after > inner.cfg.disk_bytes {
        st.client(client).put_err += 1;
        return Some(Response::Err {
            code: ErrCode::Enospc,
            msg: "no space left on device".into(),
        });
    }
    st.disk_used = used_after;
    st.files.insert(name.to_string(), data.to_vec());
    st.client(client).put_ok += 1;
    Some(Response::Ok {
        info: format!("{} bytes", data.len()),
    })
}

fn file_get(inner: &Inner, client: u32, name: &str, elapsed: Duration) -> Option<Response> {
    if black_hole_stall(inner, elapsed) {
        return None;
    }
    let mut st = inner.state.lock().expect("state lock");
    match st.files.get(name).cloned() {
        Some(data) => {
            st.client(client).get_ok += 1;
            Some(Response::Data { data })
        }
        None => {
            st.client(client).get_err += 1;
            Some(Response::Err {
                code: ErrCode::NotFound,
                msg: format!("no such file: {name}"),
            })
        }
    }
}

/// Render the counters as a `simgrid::metrics::SeriesSet` — the same
/// JSON shape every figure emits, so downstream tooling needs nothing
/// new. One series per counter, one point per client `(client, count)`;
/// the `schedd_crashes` series carries the global crash count at x=0.
fn stats_json(inner: &Inner) -> String {
    let st = inner.state.lock().expect("state lock");
    let mut set = SeriesSet::new("gridd per-client counters", "client", "count");
    let mut ids: Vec<u32> = st.clients.keys().copied().collect();
    ids.sort_unstable();
    type Getter = fn(&ClientCounters) -> u64;
    let counters: [(&str, Getter); 10] = [
        ("submit_ok", |c| c.submit_ok),
        ("submit_busy", |c| c.submit_busy),
        ("submit_down", |c| c.submit_down),
        ("submit_lost", |c| c.submit_lost),
        ("put_ok", |c| c.put_ok),
        ("put_err", |c| c.put_err),
        ("get_ok", |c| c.get_ok),
        ("get_err", |c| c.get_err),
        ("df_calls", |c| c.df_calls),
        ("resets", |c| c.resets),
    ];
    for (name, get) in counters {
        let mut s = Series::new(name);
        for &id in &ids {
            s.push_xy(id as f64, get(&st.clients[&id]) as f64);
        }
        set.add(s);
    }
    let mut crashes = Series::new("schedd_crashes");
    crashes.push_xy(0.0, st.crashes as f64);
    set.add(crashes);
    set.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use retry::{Dur, Time};

    fn plan_with(specs: Vec<FaultSpec>) -> FaultPlan {
        let mut p = FaultPlan::new(7);
        p.specs = specs;
        p
    }

    #[test]
    fn windows_expand_repeats_and_pair_black_holes() {
        let plan = plan_with(vec![
            FaultSpec::repeating(
                Time::from_secs(1),
                Dur::from_secs(10),
                3,
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(2)),
                },
            ),
            FaultSpec::once(
                Time::from_secs(5),
                FaultKind::ServerBlackHole {
                    server: "yyy".into(),
                    enable: true,
                },
            ),
            FaultSpec::once(
                Time::from_secs(8),
                FaultKind::ServerBlackHole {
                    server: "yyy".into(),
                    enable: false,
                },
            ),
        ]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.sched_down.len(), 3);
        assert!(w.sched_forced_down(Duration::from_secs(12)));
        assert!(!w.sched_forced_down(Duration::from_secs(4)));
        assert_eq!(w.black_hole.len(), 1);
        assert_eq!(
            w.black_hole_until(Duration::from_secs(6)),
            Some(Duration::from_secs(8))
        );
        assert_eq!(w.black_hole_until(Duration::from_secs(9)), None);
    }

    #[test]
    fn restart_truncates_kill_window() {
        let plan = plan_with(vec![
            FaultSpec::once(
                Time::from_secs(1),
                FaultKind::ScheddKill {
                    downtime: Some(Dur::from_secs(10)),
                },
            ),
            FaultSpec::once(Time::from_secs(3), FaultKind::ScheddRestart),
        ]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert!(w.sched_forced_down(Duration::from_secs(2)));
        assert!(!w.sched_forced_down(Duration::from_secs(4)));
    }

    #[test]
    fn unterminated_black_hole_stays_open() {
        let plan = plan_with(vec![FaultSpec::once(
            Time::from_secs(2),
            FaultKind::ServerBlackHole {
                server: "yyy".into(),
                enable: true,
            },
        )]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert!(w.black_hole_until(Duration::from_secs(1)).is_none());
        assert!(w.black_hole_until(Duration::from_secs(1000)).is_some());
    }

    #[test]
    fn lie_windows_sum_and_clamp() {
        let plan = plan_with(vec![FaultSpec::once(
            Time::from_secs(0),
            FaultKind::FreeSpaceLie {
                delta_bytes: -100,
                duration: Dur::from_secs(5),
            },
        )]);
        let w = Windows::compile(&plan, Duration::from_secs(1));
        assert_eq!(w.df_delta(Duration::from_secs(1)), -100);
        assert_eq!(w.df_delta(Duration::from_secs(6)), 0);
    }
}
