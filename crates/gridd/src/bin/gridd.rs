//! The `gridd` daemon binary.
//!
//! ```text
//! gridd [--listen ADDR] [--faults PLAN.json] [--threads N]
//!       [--slots N] [--service-ms MS] [--crash-overloads N]
//!       [--downtime-ms MS] [--deadline-ms MS] [--print-addr]
//! ```
//!
//! Binds (default `127.0.0.1:7177`; `:0` picks a free port), prints
//! `gridd listening on ADDR` (stdout, flushed — machine-readable with
//! `--print-addr`, which prints *only* the address), then serves until
//! killed. `EG_GRIDD_THREADS` sizes the worker pool when `--threads`
//! is absent.

use gridd::GriddConfig;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gridd [--listen ADDR] [--faults PLAN.json] [--threads N] \
         [--slots N] [--service-ms MS] [--crash-overloads N] \
         [--downtime-ms MS] [--deadline-ms MS] [--print-addr]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = GriddConfig {
        listen: "127.0.0.1:7177".into(),
        ..GriddConfig::default()
    };
    let mut print_addr = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        macro_rules! next_parse {
            ($ty:ty) => {
                match it.next().and_then(|s| s.parse::<$ty>().ok()) {
                    Some(v) => v,
                    None => return usage(),
                }
            };
        }
        match a.as_str() {
            "--listen" => cfg.listen = next_parse!(String),
            "--threads" => cfg.threads = next_parse!(usize),
            "--slots" => cfg.slots = next_parse!(u64),
            "--service-ms" => cfg.service = Duration::from_millis(next_parse!(u64)),
            "--crash-overloads" => cfg.crash_overloads = next_parse!(u32),
            "--downtime-ms" => cfg.downtime = Duration::from_millis(next_parse!(u64)),
            "--deadline-ms" => cfg.deadline = Duration::from_millis(next_parse!(u64)),
            "--faults" => {
                let Some(path) = it.next() else {
                    return usage();
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("gridd: cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match simgrid::FaultPlan::parse_json(&text) {
                    Ok(plan) => cfg.plan = plan,
                    Err(e) => {
                        eprintln!("gridd: bad fault plan {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--print-addr" => print_addr = true,
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let handle = match gridd::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gridd: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = std::io::stdout();
    if print_addr {
        let _ = writeln!(out, "{}", handle.addr());
    } else {
        let _ = writeln!(out, "gridd listening on {}", handle.addr());
    }
    let _ = out.flush();
    // Serve until killed (SIGTERM/SIGKILL from the harness or shell).
    loop {
        std::thread::park();
    }
}
