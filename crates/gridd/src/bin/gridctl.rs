//! `gridctl` — the verb-per-invocation client the ftsh scripts drive.
//!
//! ```text
//! gridctl ADDR CLIENT submit JOB        print the job id
//! gridctl ADDR CLIENT put NAME DATA...  store DATA (joined by spaces)
//! gridctl ADDR CLIENT get NAME          print the file contents
//! gridctl ADDR CLIENT df                print the free-slot count
//! gridctl ADDR CLIENT sense N           exit 0 iff free slots >= N
//! gridctl ADDR CLIENT stats             print the metrics JSON
//! ```
//!
//! Exit status: 0 on success, 1 on any grid failure (busy, down,
//! ENOSPC, reset, deadline) — precisely the signal an ftsh `try`
//! block needs to back off and retry. `sense` is the carrier-sense
//! prelude as one verb: a cheap `df` plus the threshold test, so the
//! Ethernet discipline's "defer when the medium is busy" is a single
//! failing command.
//!
//! `--timeout-ms MS` (before ADDR) overrides the 10 s per-op deadline.

use gridd::GridClient;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gridctl [--timeout-ms MS] ADDR CLIENT \
         (submit JOB | put NAME DATA... | get NAME | df | sense N | stats)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut timeout = Duration::from_secs(10);
    if args.first().map(|s| s.as_str()) == Some("--timeout-ms") {
        if args.len() < 2 {
            return usage();
        }
        match args[1].parse::<u64>() {
            Ok(ms) => timeout = Duration::from_millis(ms),
            Err(_) => return usage(),
        }
        args.drain(..2);
    }
    if args.len() < 3 {
        return usage();
    }
    let addr = args[0].clone();
    let client: u32 = match args[1].parse() {
        Ok(c) => c,
        Err(_) => return usage(),
    };
    let c = GridClient::new(addr, client).with_timeout(timeout);
    let verb = args[2].as_str();
    let rest = &args[3..];

    let outcome: Result<String, String> = match (verb, rest) {
        ("submit", [job]) => c.submit(job).map_err(|e| e.to_string()),
        ("put", [name, data @ ..]) if !data.is_empty() => {
            let payload = data.join(" ");
            c.put(name, payload.as_bytes())
                .map(|()| format!("{} bytes", payload.len()))
                .map_err(|e| e.to_string())
        }
        ("get", [name]) => match c.get(name) {
            Ok(data) => Ok(String::from_utf8_lossy(&data).into_owned()),
            Err(e) => Err(e.to_string()),
        },
        ("df", []) => c.df().map(|n| n.to_string()).map_err(|e| e.to_string()),
        ("sense", [n]) => {
            let need: u64 = match n.parse() {
                Ok(v) => v,
                Err(_) => return usage(),
            };
            match c.df() {
                Ok(free) if free >= need => Ok(free.to_string()),
                Ok(free) => Err(format!("medium busy: {free} < {need}")),
                Err(e) => Err(e.to_string()),
            }
        }
        ("stats", []) => c.stats().map_err(|e| e.to_string()),
        _ => return usage(),
    };

    match outcome {
        Ok(text) => {
            let mut out = std::io::stdout();
            let _ = writeln!(out, "{text}");
            let _ = out.flush();
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("gridctl: {msg}");
            ExitCode::FAILURE
        }
    }
}
