//! `conform` — run the sim ↔ real differential conformance corpus.
//!
//! ```text
//! conform [--corpus DIR] [--report PATH] [--sample-plan PATH]
//! ```
//!
//! Every script in the corpus runs through the 3-way matrix — the
//! tree-walking `ftsh::Vm`, the bytecode VM, and the real-process
//! `procman` driver — under the same fault plan, and every pair of
//! outcomes is diffed (see `egbench::conformance`). Writes a markdown
//! divergence report
//! (default `results/conformance.md`) and a sample `PLAN.json`
//! (default `results/PLAN.sample.json`) demonstrating the fault-plan
//! schema `figures --faults` consumes — both uploaded as CI artifacts
//! next to `BENCH_engine.json`.
//!
//! Exit status: 0 conformant, 1 divergences found, 2 harness error.

use egbench::conformance::{corpus_dir, report, run_corpus};
use retry::{Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use std::path::PathBuf;
use std::process::ExitCode;

/// The sample plan published as a CI artifact: an aggressive crash
/// schedule (a schedd kill every simulated minute) plus a lossy
/// control channel — the shape EXPERIMENTS.md's stress table uses.
fn sample_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(7);
    plan.specs.push(FaultSpec::repeating(
        Time::from_secs(30),
        Dur::from_secs(60),
        10,
        FaultKind::ScheddKill {
            downtime: Some(Dur::from_secs(15)),
        },
    ));
    plan.specs.push(FaultSpec::once(
        Time::from_secs(120),
        FaultKind::MsgLoss {
            channel: "condor_submit".into(),
            probability: 0.5,
            duration: Dur::from_secs(30),
        },
    ));
    plan
}

fn main() -> ExitCode {
    let mut corpus = corpus_dir();
    let mut report_path = egbench::results_dir().join("conformance.md");
    let mut plan_path = egbench::results_dir().join("PLAN.sample.json");

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut take = |name: &str| -> Option<PathBuf> {
            let v = argv.next();
            if v.is_none() {
                eprintln!("{name} needs a path");
            }
            v.map(PathBuf::from)
        };
        match arg.as_str() {
            "--corpus" => match take("--corpus") {
                Some(p) => corpus = p,
                None => return ExitCode::from(2),
            },
            "--report" => match take("--report") {
                Some(p) => report_path = p,
                None => return ExitCode::from(2),
            },
            "--sample-plan" => match take("--sample-plan") {
                Some(p) => plan_path = p,
                None => return ExitCode::from(2),
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: conform [--corpus DIR] [--report PATH] [--sample-plan PATH]");
                return ExitCode::from(2);
            }
        }
    }

    let verdicts = match run_corpus(&corpus) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("conform: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &verdicts {
        let mark = if v.ok() { "ok " } else { "DIVERGED" };
        println!("{mark:8} {}", v.name);
        for d in &v.divergences {
            println!("         - {d}");
        }
    }
    let diverged = verdicts.iter().filter(|v| !v.ok()).count();
    println!(
        "{} scripts, {} conformant, {} diverged",
        verdicts.len(),
        verdicts.len() - diverged,
        diverged
    );

    for (path, text) in [
        (&report_path, report(&verdicts)),
        (&plan_path, sample_plan().to_json()),
    ] {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("conform: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if diverged > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
