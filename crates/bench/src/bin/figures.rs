//! Regenerate the paper's figures.
//!
//! ```text
//! figures [--quick] [--seed N] [fig1 fig2 ... | all]
//! ```
//!
//! Prints each figure as an aligned table (the rows the paper plots)
//! and writes `results/figN.json`. Default scale is `--full`
//! (paper-size populations and windows); `--quick` runs the reduced
//! versions used in CI.

use gridworld::figures::{by_name, Scale, ALL_ABLATIONS, ALL_FIGURES};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut seed: u64 = 2003;
    let mut chart = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--chart" => chart = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "ablations" => wanted.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            other if other.starts_with("fig") || other.starts_with("ablation-") => {
                wanted.push(other.to_string())
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [--quick] [--seed N] [fig1..fig7 | all | ablations | ablation-threshold | ablation-channel]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    for name in wanted {
        eprintln!("== running {name} ({scale:?}, seed {seed}) ==");
        match by_name(&name, scale, seed) {
            Some(set) => match egbench::emit(&name, &set) {
                Ok(path) => {
                    if chart {
                        println!("{}", set.to_ascii_chart(64, 16));
                    }
                    eprintln!("   wrote {}", path.display());
                }
                Err(e) => {
                    eprintln!("   cannot write results: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("unknown figure: {name}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
