//! Regenerate the paper's figures.
//!
//! ```text
//! figures [--quick] [--seed N] [fig1 fig2 ... | all]
//! figures --stats [--quick] [--seed N] [figs...]
//! ```
//!
//! Prints each figure as an aligned table (the rows the paper plots)
//! and writes `results/figN.json`. Default scale is `--full`
//! (paper-size populations and windows); `--quick` runs the reduced
//! versions used in CI.
//!
//! `--stats` is the engine perf baseline: it runs the multi-point
//! sweep figures twice — once pinned to one sweep thread (the
//! sequential baseline) and once fanned across threads — and writes
//! wall-clock, peak RSS, events-processed/sec and allocations-per-tick
//! for both passes, plus the parallel speedup, to
//! `BENCH_engine.json` at the workspace root.

use gridworld::figures::{by_name, Scale, ALL_ABLATIONS, ALL_FIGURES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation so `--stats` can report
/// allocations-per-tick; delegates all actual memory work to the
/// system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), or
/// 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One measured pass over the sweep figures at a fixed thread count.
struct PassStats {
    threads: usize,
    wall_s: f64,
    events: u64,
    vm_ticks: u64,
    allocs: u64,
}

impl PassStats {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn allocs_per_tick(&self) -> f64 {
        if self.vm_ticks > 0 {
            self.allocs as f64 / self.vm_ticks as f64
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"threads\": {},\n    \"wall_s\": {:.6},\n    \"events\": {},\n    \"events_per_sec\": {:.1},\n    \"vm_ticks\": {},\n    \"allocations\": {},\n    \"allocs_per_tick\": {:.2}\n  }}",
            self.threads,
            self.wall_s,
            self.events,
            self.events_per_sec(),
            self.vm_ticks,
            self.allocs,
            self.allocs_per_tick(),
        )
    }
}

/// Run every named figure once with the sweep pinned to `threads`
/// workers, sampling the engine counters around the pass.
fn run_pass(threads: usize, figs: &[String], scale: Scale, seed: u64) -> PassStats {
    std::env::set_var("EG_SWEEP_THREADS", threads.to_string());
    let events0 = simgrid::events_popped_total();
    let ticks0 = gridworld::driver::vm_ticks_total();
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for name in figs {
        let set = by_name(name, scale, seed).expect("stats figure exists");
        std::hint::black_box(&set);
    }
    let wall_s = start.elapsed().as_secs_f64();
    std::env::remove_var("EG_SWEEP_THREADS");
    PassStats {
        threads,
        wall_s,
        events: simgrid::events_popped_total() - events0,
        vm_ticks: gridworld::driver::vm_ticks_total() - ticks0,
        allocs: ALLOCS.load(Ordering::Relaxed) - allocs0,
    }
}

/// The perf baseline harness behind `--stats`.
fn run_stats(mut figs: Vec<String>, scale: Scale, seed: u64) -> ExitCode {
    if figs.is_empty() {
        // The multi-point sweep figures: one independent simulation per
        // (discipline, population) point, the parallel runner's home turf.
        figs = vec!["fig1".into(), "fig4".into(), "fig5".into()];
    }
    if let Some(bad) = figs
        .iter()
        .find(|f| !ALL_FIGURES.contains(&f.as_str()) && !ALL_ABLATIONS.contains(&f.as_str()))
    {
        eprintln!("unknown figure: {bad}");
        return ExitCode::from(2);
    }
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Exercise the fan-out path even on a single-core host (where the
    // recorded speedup will honestly sit near 1.0).
    let par_threads = host_cpus.max(2);

    eprintln!("== stats: sequential baseline (1 sweep thread) ==");
    let seq = run_pass(1, &figs, scale, seed);
    eprintln!(
        "   {:.3}s, {} events ({:.0}/s), {} ticks, {:.1} allocs/tick",
        seq.wall_s,
        seq.events,
        seq.events_per_sec(),
        seq.vm_ticks,
        seq.allocs_per_tick()
    );
    eprintln!("== stats: parallel sweep ({par_threads} threads) ==");
    let par = run_pass(par_threads, &figs, scale, seed);
    eprintln!(
        "   {:.3}s, {} events ({:.0}/s), {} ticks, {:.1} allocs/tick",
        par.wall_s,
        par.events,
        par.events_per_sec(),
        par.vm_ticks,
        par.allocs_per_tick()
    );

    let speedup = if par.wall_s > 0.0 {
        seq.wall_s / par.wall_s
    } else {
        0.0
    };
    let rss = peak_rss_kb();
    let fig_list = figs
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"harness\": \"figures --stats\",\n  \"scale\": \"{scale:?}\",\n  \"seed\": {seed},\n  \"figures\": [{fig_list}],\n  \"host_cpus\": {host_cpus},\n  \"peak_rss_kb\": {rss},\n  \"sequential\": {},\n  \"parallel\": {},\n  \"speedup\": {speedup:.2}\n}}\n",
        seq.to_json(),
        par.to_json(),
    );
    let path = egbench::workspace_root().join("BENCH_engine.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("   wrote {}", path.display());
    eprintln!("   speedup: {speedup:.2}x over sequential on {host_cpus} CPU(s)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut seed: u64 = 2003;
    let mut chart = false;
    let mut stats = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--chart" => chart = true,
            "--stats" => stats = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "ablations" => wanted.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            other if other.starts_with("fig") || other.starts_with("ablation-") => {
                wanted.push(other.to_string())
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [--quick] [--seed N] [--stats] [fig1..fig7 | all | ablations | ablation-threshold | ablation-channel]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if stats {
        return run_stats(wanted, scale, seed);
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    for name in wanted {
        eprintln!("== running {name} ({scale:?}, seed {seed}) ==");
        match by_name(&name, scale, seed) {
            Some(set) => match egbench::emit(&name, &set) {
                Ok(path) => {
                    if chart {
                        println!("{}", set.to_ascii_chart(64, 16));
                    }
                    eprintln!("   wrote {}", path.display());
                }
                Err(e) => {
                    eprintln!("   cannot write results: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                eprintln!("unknown figure: {name}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
