//! Regenerate the paper's figures.
//!
//! ```text
//! figures [--quick] [--seed N] [fig1 fig2 ... | all]
//! figures --trace OUT.jsonl [--seed N] [figs...]
//! figures --faults PLAN.json [figs...]
//! figures --stats [--quick] [--seed N] [figs...]
//! figures postmortem TRACE.jsonl [--timeline] [--rounds] [--client N]
//! ```
//!
//! Prints each figure as an aligned table (the rows the paper plots)
//! and writes `results/figN.json`. Default scale is `--full`
//! (paper-size populations and windows); `--quick` runs the reduced
//! versions used in CI.
//!
//! `--trace` additionally records the structured trace of every
//! simulation behind the figure — attempt spans with backoff draws and
//! budgets, command boundaries, carrier-sense probes, deferrals,
//! collisions, schedd crashes — as JSONL. With one figure the file is
//! written at the given path; with several, each figure gets
//! `PATH-<fig>.jsonl`. Traces are bit-deterministic per seed, however
//! many sweep threads run.
//!
//! `--faults` arms a deterministic fault-injection plan (see
//! `simgrid::faults::FaultPlan::parse_json` for the JSON schema) on
//! top of each figure's built-in scenario physics: schedd kills,
//! ENOSPC windows, free-space lies, server black-hole toggles,
//! message loss, latency spikes, clock skew. Every injection appears
//! in the structured trace as a `fault` record, so `--trace` plus
//! `postmortem` counts them per kind.
//!
//! `postmortem` reads such a file back and reconstructs the run: event
//! counts, retry/backoff distributions, attempts-per-success, and
//! (with `--timeline`) per-client swimlanes, filtered by `--client`.
//!
//! `--live` is the arena mode: instead of simulating, it starts a real
//! `gridd` daemon in-process and races N concurrent real clients per
//! discipline against it — Aloha first, then Ethernet — under forced
//! schedd crashes. The population is one epoll swarm of lightweight
//! client tasks batching verbs over persistent TCP connections, so N
//! scales to 1000+ on one core. The merged JSONL trace (the usual
//! schema), postmortems, and the live-vs-sim comparison land in
//! `results/`; the exit code is nonzero unless the live daemon
//! confirms the simulator's Ethernet > Aloha prediction — and, with
//! `--min-dispatch V`, unless the better discipline sustains at least
//! V decoded responses per second. `--quick` shrinks it to the
//! 3-client CI race; `--live-clients N` overrides the population with
//! physics scaled to N.
//!
//! `--stats` is the engine perf baseline: it runs the multi-point
//! sweep figures twice — once pinned to one sweep thread (the
//! sequential baseline) and once fanned across threads — and writes
//! wall-clock, peak RSS, events-processed/sec and allocations-per-tick
//! for both passes, plus the parallel speedup, to
//! `BENCH_engine.json` at the workspace root.

use gridworld::figures::{
    by_name_full, by_name_with_plan, Scale, ALL_ABLATIONS, ALL_FIGURES, COORD_FIGURES,
    EXTENDED_FIGURES,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation so `--stats` can report
/// allocations-per-tick; delegates all actual memory work to the
/// system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), or
/// 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One measured pass over the sweep figures at a fixed thread count.
struct PassStats {
    /// Worker count this pass asked the sweep engine for.
    threads_requested: usize,
    /// Worker count the engine resolved the request to (the
    /// `EG_SWEEP_THREADS` pipeline, before the per-figure point cap).
    threads_effective: usize,
    wall_s: f64,
    events: u64,
    /// Past-scheduled events clamped forward to `now` across the pass.
    clamps: u64,
    vm_ticks: u64,
    allocs: u64,
}

impl PassStats {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn allocs_per_tick(&self) -> f64 {
        if self.vm_ticks > 0 {
            self.allocs as f64 / self.vm_ticks as f64
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"threads_requested\": {},\n    \"threads_effective\": {},\n    \"wall_s\": {:.6},\n    \"events\": {},\n    \"events_per_sec\": {:.1},\n    \"queue_clamps\": {},\n    \"vm_ticks\": {},\n    \"allocations\": {},\n    \"allocs_per_tick\": {:.2}\n  }}",
            self.threads_requested,
            self.threads_effective,
            self.wall_s,
            self.events,
            self.events_per_sec(),
            self.clamps,
            self.vm_ticks,
            self.allocs,
            self.allocs_per_tick(),
        )
    }
}

/// Run every named figure once with the sweep pinned to `threads`
/// workers, sampling the engine counters around the pass.
fn run_pass(threads: usize, figs: &[String], scale: Scale, seed: u64) -> PassStats {
    std::env::set_var("EG_SWEEP_THREADS", threads.to_string());
    // What the engine actually resolves the request to, before the
    // per-figure point cap (usize::MAX points ⇒ cap never binds).
    let threads_effective = gridworld::sweep::configured_threads(usize::MAX);
    let ticks0 = gridworld::driver::vm_ticks_total();
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    // Events are aggregated per run (each figure sums its own queues),
    // not read from the deprecated process-global counter, so another
    // thread's simulations can never contaminate the sample.
    let mut events = 0u64;
    let mut clamps = 0u64;
    for name in figs {
        let run = by_name_full(name, scale, seed, false).expect("stats figure exists");
        events += run.events_popped;
        clamps += run.clamps;
        std::hint::black_box(&run.set);
    }
    let wall_s = start.elapsed().as_secs_f64();
    std::env::remove_var("EG_SWEEP_THREADS");
    PassStats {
        threads_requested: threads,
        threads_effective,
        wall_s,
        events,
        clamps,
        vm_ticks: gridworld::driver::vm_ticks_total() - ticks0,
        allocs: ALLOCS.load(Ordering::Relaxed) - allocs0,
    }
}

/// Steady-state interpreter microbench: one VM re-running a
/// control-and-variable-heavy script under a bounded retry loop with
/// instant virtual completions. This isolates statement
/// interpretation — the part the bytecode backend compiles — from
/// command dispatch, which both backends share with the driver.
fn vm_steady_source() -> String {
    let body = "  a=${b}\n  if ${a} .eql. base\n    c=${a}${b}\n  else\n    c=err\n  end\n  forany v in ${a} ${c}\n    d=${v}\n  end\n  e=${d}\n"
        .repeat(64);
    format!("b=base\ntry 2000 times every 1 ms\n{body}  failure\nend\n")
}

/// Run one backend through the steady workload; returns (ticks, wall seconds).
fn vm_steady_leg(kind: ftsh::VmKind, src: &str) -> (u64, f64) {
    use ftsh::vm::{CmdResult, Effect, VmStatus};
    use retry::Time;
    let script = ftsh::parse(src).expect("steady workload parses");
    let mut vm = ftsh::Vm::with_kind(kind, &script, ftsh::Env::new(), 7);
    vm.set_log_detail(false);
    let mut now = Time::ZERO;
    let mut ticks = 0u64;
    let mut effects = Vec::new();
    let start = Instant::now();
    loop {
        ticks += 1;
        let status = vm.tick_into(now, &mut effects);
        for e in effects.drain(..) {
            if let Effect::Start { token, .. } = e {
                vm.complete(token, CmdResult::fail());
            }
        }
        match status {
            VmStatus::Done { .. } => break,
            VmStatus::Running { next_wake } => {
                if let Some(w) = next_wake {
                    now = now.max(w);
                }
            }
        }
    }
    (ticks, start.elapsed().as_secs_f64())
}

/// The tree-vs-bytecode comparison rows for `BENCH_engine.json`.
fn vm_bench_json() -> (String, f64) {
    let src = vm_steady_source();
    // Warm caches (and the compile cache) before either timed leg.
    let _ = vm_steady_leg(ftsh::VmKind::Tree, &src);
    let (tree_ticks, tree_wall) = vm_steady_leg(ftsh::VmKind::Tree, &src);
    let (byte_ticks, byte_wall) = vm_steady_leg(ftsh::VmKind::Bytecode, &src);
    let rate = |ticks: u64, wall: f64| if wall > 0.0 { ticks as f64 / wall } else { 0.0 };
    let tree_rate = rate(tree_ticks, tree_wall);
    let byte_rate = rate(byte_ticks, byte_wall);
    let speedup = if tree_rate > 0.0 {
        byte_rate / tree_rate
    } else {
        0.0
    };
    let leg = |name: &str, ticks: u64, wall: f64, r: f64| {
        format!(
            "    \"{name}\": {{\"ticks\": {ticks}, \"wall_s\": {wall:.6}, \"ticks_per_sec\": {r:.0}}}"
        )
    };
    let json = format!(
        "{{\n    \"workload\": \"steady-interp mixed x64, 2000 attempts\",\n{},\n{},\n    \"bytecode_speedup\": {speedup:.2}\n  }}",
        leg("tree", tree_ticks, tree_wall, tree_rate),
        leg("bytecode", byte_ticks, byte_wall, byte_rate),
    );
    (json, speedup)
}

/// Parse `"max_allocs_per_tick": <float>` out of `BENCH_budget.json`
/// (flat object, no serde in the workspace).
fn parse_alloc_budget(text: &str) -> Option<f64> {
    let tail = text.split("\"max_allocs_per_tick\"").nth(1)?;
    let val = tail.split(':').nth(1)?;
    val.trim()
        .trim_end_matches(&[',', '}', '\n', ' '][..])
        .parse()
        .ok()
}

/// The perf baseline harness behind `--stats`.
fn run_stats(mut figs: Vec<String>, scale: Scale, seed: u64) -> ExitCode {
    if figs.is_empty() {
        // The multi-point sweep figures: one independent simulation per
        // (discipline, population) point, the parallel runner's home turf.
        figs = vec!["fig1".into(), "fig4".into(), "fig5".into()];
    }
    if let Some(bad) = figs.iter().find(|f| {
        !ALL_FIGURES.contains(&f.as_str())
            && !ALL_ABLATIONS.contains(&f.as_str())
            && !EXTENDED_FIGURES.contains(&f.as_str())
            && !COORD_FIGURES.contains(&f.as_str())
    }) {
        eprintln!("unknown figure: {bad}");
        return ExitCode::from(2);
    }
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    eprintln!("== stats: sequential baseline (1 sweep thread) ==");
    let seq = run_pass(1, &figs, scale, seed);
    eprintln!(
        "   {:.3}s, {} events ({:.0}/s), {} ticks, {:.1} allocs/tick",
        seq.wall_s,
        seq.events,
        seq.events_per_sec(),
        seq.vm_ticks,
        seq.allocs_per_tick()
    );
    // The parallel leg is sized to the host: benchmarking a 2-thread
    // sweep on a 1-CPU box would measure contention, not speedup, so a
    // single-CPU host skips the leg and records the speedup as N/A.
    let par = if host_cpus > 1 {
        eprintln!("== stats: parallel sweep ({host_cpus} threads) ==");
        let par = run_pass(host_cpus, &figs, scale, seed);
        eprintln!(
            "   {:.3}s, {} events ({:.0}/s), {} ticks, {:.1} allocs/tick",
            par.wall_s,
            par.events,
            par.events_per_sec(),
            par.vm_ticks,
            par.allocs_per_tick()
        );
        Some(par)
    } else {
        eprintln!("== stats: single-CPU host, skipping the parallel leg (speedup N/A) ==");
        None
    };

    let total_clamps = seq.clamps + par.as_ref().map_or(0, |p| p.clamps);
    if total_clamps > 0 {
        eprintln!(
            "   warning: {total_clamps} event(s) were scheduled into the past and clamped to now"
        );
    }
    let speedup = par.as_ref().and_then(|p| {
        if p.wall_s > 0.0 {
            Some(seq.wall_s / p.wall_s)
        } else {
            None
        }
    });
    let rss = peak_rss_kb();
    let fig_list = figs
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let par_json = par
        .as_ref()
        .map_or_else(|| "null".to_string(), PassStats::to_json);
    let speedup_json = speedup.map_or_else(|| "null".to_string(), |s| format!("{s:.2}"));
    eprintln!("== stats: steady-state interpreter (tree vs bytecode) ==");
    let (vm_json, vm_speedup) = vm_bench_json();
    eprintln!("   bytecode is {vm_speedup:.2}x the tree-walker on the steady workload");
    let json = format!(
        "{{\n  \"harness\": \"figures --stats\",\n  \"scale\": \"{scale:?}\",\n  \"seed\": {seed},\n  \"figures\": [{fig_list}],\n  \"host_cpus\": {host_cpus},\n  \"peak_rss_kb\": {rss},\n  \"sequential\": {},\n  \"parallel\": {par_json},\n  \"speedup\": {speedup_json},\n  \"vm\": {vm_json}\n}}\n",
        seq.to_json(),
    );
    let path = egbench::workspace_root().join("BENCH_engine.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("   wrote {}", path.display());
    match speedup {
        Some(s) => eprintln!("   speedup: {s:.2}x over sequential on {host_cpus} CPU(s)"),
        None => eprintln!("   speedup: N/A (single-CPU host)"),
    }

    // Perf-regression tripwire: `BENCH_budget.json` next to the
    // recorded baseline caps allocations-per-tick; CI fails the build
    // when the sequential pass exceeds it.
    let budget_path = egbench::workspace_root().join("BENCH_budget.json");
    if let Ok(text) = std::fs::read_to_string(&budget_path) {
        match parse_alloc_budget(&text) {
            Some(budget) => {
                let apt = seq.allocs_per_tick();
                if apt > budget {
                    eprintln!(
                        "   BUDGET EXCEEDED: {apt:.2} allocs/tick > budget {budget:.2} \
                         (from {})",
                        budget_path.display()
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!("   within alloc budget: {apt:.2} <= {budget:.2} allocs/tick");
            }
            None => {
                eprintln!(
                    "   cannot parse max_allocs_per_tick from {}",
                    budget_path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `figures postmortem TRACE.jsonl [--timeline] [--rounds]
/// [--client N]` — read a structured trace back and reconstruct what
/// happened.
fn run_postmortem(args: Vec<String>) -> ExitCode {
    let mut path: Option<String> = None;
    let mut timeline = false;
    let mut rounds = false;
    let mut client: Option<i64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timeline" => timeline = true,
            "--rounds" => rounds = true,
            "--client" => match it.next().and_then(|s| s.parse().ok()) {
                Some(c) => client = Some(c),
                None => {
                    eprintln!("--client needs a number");
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unknown postmortem argument: {other}");
                eprintln!(
                    "usage: figures postmortem TRACE.jsonl [--timeline] [--rounds] [--client N]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: figures postmortem TRACE.jsonl [--timeline] [--rounds] [--client N]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let records = match simgrid::trace::from_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let summary = simgrid::TraceSummary::from_records(&records);
    print!("{}", summary.render());
    if rounds {
        print!("{}", simgrid::postmortem::render_rounds(&records));
    }
    if timeline {
        print!("{}", simgrid::postmortem::render_timeline(&records, client));
    }
    ExitCode::SUCCESS
}

/// The live arena behind `--live`: real daemon, real clients, and a
/// sim-vs-live verdict on the Ethernet > Aloha ordering.
fn run_live(
    scale: Scale,
    seed: u64,
    clients: Option<usize>,
    min_dispatch: Option<f64>,
) -> ExitCode {
    // An explicit population size picks physics scaled to it; the
    // quick/full presets keep their historical tuning otherwise.
    let opts = match clients {
        Some(n) => egbench::live::LiveOptions::sized(n, seed, egbench::results_dir()),
        None => match scale {
            Scale::Quick => egbench::live::LiveOptions::quick(seed, egbench::results_dir()),
            Scale::Full => egbench::live::LiveOptions::full(seed, egbench::results_dir()),
        },
    };
    eprintln!(
        "== live arena: {} real clients x {} jobs per discipline (seed {seed}) ==",
        opts.clients, opts.jobs
    );
    let report = match egbench::live::run_arena(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("live arena failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for out in [&report.aloha, &report.ethernet] {
        eprintln!(
            "   {:<8} {} jobs done, {} failed submits, {} sense reads, {} crashes, {:.1}s wall",
            out.discipline.label(),
            out.jobs_done(),
            out.failed_submits(),
            out.df_calls(),
            out.crashes,
            out.wall_s,
        );
    }
    eprintln!(
        "   sim (full) predicts: Aloha {:.0} vs Ethernet {:.0}",
        report.sim_jobs.0, report.sim_jobs.1
    );
    let table = opts.out_dir.join("live_arena.md");
    if let Ok(md) = std::fs::read_to_string(&table) {
        print!("{md}");
    }
    eprintln!("   wrote {}", table.display());
    // The throughput gate for CI's stress job: the *better* discipline
    // must clear the floor — a regression that halves the event loop's
    // dispatch rate fails the run even when the ordering still holds.
    if let Some(floor) = min_dispatch {
        let best = report
            .aloha
            .dispatch_rate
            .max(report.ethernet.dispatch_rate);
        if best < floor {
            eprintln!(
                "   dispatch rate {best:.0} verbs/s is below the --min-dispatch floor {floor:.0}"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("   dispatch rate {best:.0} verbs/s clears the --min-dispatch floor {floor:.0}");
    }
    if report.confirms {
        eprintln!("   live daemon CONFIRMS the sim's Ethernet > Aloha ordering");
        ExitCode::SUCCESS
    } else {
        eprintln!("   live daemon DOES NOT CONFIRM Ethernet > Aloha");
        ExitCode::FAILURE
    }
}

/// The live coordinated-workload smoke behind `--coord-live`: a real
/// all-reduce population against a real daemon, gated on the sim's
/// Ethernet <= Aloha time-to-global-completion prediction.
fn run_coord_live(seed: u64) -> ExitCode {
    let opts = egbench::coord_live::CoordLiveOptions::quick(seed, egbench::results_dir());
    eprintln!(
        "== live all-reduce: {} real ranks x {} rounds per discipline (seed {seed}) ==",
        opts.ranks, opts.rounds
    );
    let report = match egbench::coord_live::run_coord_live(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("live all-reduce failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for out in [&report.aloha, &report.ethernet] {
        eprintln!(
            "   {:<8} {:.2}s wall, {} blind misses, {} sense reads, {} hits, {} kill(s), {} rejoin(s)",
            out.discipline.label(),
            out.wall_s,
            out.misses,
            out.senses,
            out.hits,
            out.kills,
            out.restarts,
        );
    }
    eprintln!(
        "   sim (quick fig8) predicts global completion: Aloha {:.1}s vs Ethernet {:.1}s",
        report.sim_done.0, report.sim_done.1
    );
    let table = opts.out_dir.join("coord_live.md");
    if let Ok(md) = std::fs::read_to_string(&table) {
        print!("{md}");
    }
    eprintln!("   wrote {}", table.display());
    if report.confirms {
        eprintln!("   live daemon CONFIRMS the sim's Ethernet <= Aloha completion ordering");
        ExitCode::SUCCESS
    } else {
        eprintln!("   live daemon DOES NOT CONFIRM Ethernet <= Aloha");
        ExitCode::FAILURE
    }
}

/// Where one figure's trace goes: the exact `--trace` path when a
/// single figure runs, `PATH-<fig>.jsonl` when several do.
fn trace_path_for(base: &str, name: &str, single: bool) -> String {
    if single {
        return base.to_string();
    }
    match base.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}-{name}.jsonl"),
        None => format!("{base}-{name}.jsonl"),
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut seed: u64 = 2003;
    let mut chart = false;
    let mut stats = false;
    let mut live = false;
    let mut coord_live = false;
    let mut live_clients: Option<usize> = None;
    let mut min_dispatch: Option<f64> = None;
    let mut trace_base: Option<String> = None;
    let mut plan: Option<simgrid::FaultPlan> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("postmortem") {
        args.next();
        return run_postmortem(args.collect());
    }
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--chart" => chart = true,
            "--stats" => stats = true,
            "--live" => live = true,
            "--coord-live" => coord_live = true,
            "--live-clients" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => live_clients = Some(n),
                _ => {
                    eprintln!("--live-clients needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--min-dispatch" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => min_dispatch = Some(v),
                _ => {
                    eprintln!("--min-dispatch needs a positive verbs/s floor");
                    return ExitCode::from(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_base = Some(p),
                None => {
                    eprintln!("--trace needs a path");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--faults" => {
                let Some(path) = it.next() else {
                    eprintln!("--faults needs a PLAN.json path");
                    return ExitCode::from(2);
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match simgrid::FaultPlan::parse_json(&text) {
                    Ok(p) => plan = Some(p),
                    Err(e) => {
                        eprintln!("bad fault plan {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "ablations" => wanted.extend(ALL_ABLATIONS.iter().map(|s| s.to_string())),
            "coord" => wanted.extend(COORD_FIGURES.iter().map(|s| s.to_string())),
            other if other.starts_with("fig") || other.starts_with("ablation-") => {
                wanted.push(other.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [--quick] [--seed N] [--stats] [--live [--live-clients N] [--min-dispatch V]] [--coord-live] [--trace OUT.jsonl] [--faults PLAN.json] [fig1..fig9 | all | ablations | coord | ablation-threshold | ablation-channel]\n       figures postmortem TRACE.jsonl [--timeline] [--rounds] [--client N]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if live {
        return run_live(scale, seed, live_clients, min_dispatch);
    }
    if coord_live {
        return run_coord_live(seed);
    }
    if stats {
        return run_stats(wanted, scale, seed);
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    let single = wanted.len() == 1;
    for name in wanted {
        eprintln!("== running {name} ({scale:?}, seed {seed}) ==");
        match by_name_with_plan(&name, scale, seed, trace_base.is_some(), plan.as_ref()) {
            Some(run) => {
                if run.clamps > 0 {
                    eprintln!(
                        "   warning: {} event(s) were scheduled into the past and clamped to now",
                        run.clamps
                    );
                }
                match egbench::emit(&name, &run.set) {
                    Ok(path) => {
                        if chart {
                            println!("{}", run.set.to_ascii_chart(64, 16));
                        }
                        eprintln!("   wrote {}", path.display());
                    }
                    Err(e) => {
                        eprintln!("   cannot write results: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let (Some(base), Some(records)) = (&trace_base, &run.trace) {
                    let tpath = trace_path_for(base, &name, single);
                    let jsonl = simgrid::trace::to_jsonl(records);
                    if let Err(e) = std::fs::write(&tpath, jsonl) {
                        eprintln!("   cannot write trace {tpath}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("   wrote {tpath} ({} records)", records.len());
                }
            }
            None => {
                eprintln!("unknown figure: {name}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}
