//! Differential sim ↔ real conformance: one corpus, three interpreters.
//!
//! The paper's central claim is that ftsh's semantics are *portable
//! across execution substrates*: the same script means the same thing
//! whether its commands are real POSIX processes (§4's process
//! manager) or simulated completions (the gridworld reproduction).
//! This module tests that claim mechanically — and, since the engine
//! grew a compiled backend, that both interpreters agree with each
//! other. Every corpus script in `crates/bench/conformance/` is run
//! three times under an equivalent [`FaultPlan`]:
//!
//! * **tree** — the reference tree-walking [`ftsh::Vm`] driven by a
//!   virtual clock; command behaviour comes from a small closed model
//!   (`true`, `false`, `echo`, `cat`, and the
//!   `unreliable`/`slow`/`noisy` fault shims) with failures drawn from
//!   the plan's `cmd-fail-first` specs;
//! * **byte** — the same script and model under the bytecode VM
//!   (`EG_FTSH_VM=bytecode`), the compiled backend that must preserve
//!   tree semantics exactly;
//! * **real** — the VM driven by `procman` against real processes,
//!   with `unreliable`/`slow`/`noisy` realised as generated shell
//!   shims whose failure budgets are seeded from the *same* plan.
//!
//! Each pair of runs is diffed on three axes: final script status,
//! final bindings of every observable variable (assignments and `->`
//! captures, collected from the AST), and the multiset of structured
//! trace tags the VM emitted (attempts, backoffs, command spans,
//! kills). Any difference is a *divergence* — evidence either that
//! simulated failure semantics have drifted from the real ones, or
//! that the bytecode lowering has drifted from the reference walker.

use ftsh::vm::{CmdInput, CmdResult, CommandSpec, Effect, Vm, VmKind, VmStatus};
use ftsh::{parse, Env, Redir, RedirTarget, Script, Seg, Stmt};
use retry::{Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan};
use simgrid::trace::{SharedSink, TraceRecord, VecSink};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default plan seed when a corpus script has no `.plan.json` sidecar.
pub const DEFAULT_PLAN_SEED: u64 = 2003;

/// Hard cap on sim executor steps — a stalled VM is a harness bug, not
/// a divergence, and should abort loudly.
const MAX_SIM_STEPS: usize = 1_000_000;

/// One corpus entry: a script plus the fault plan both sides run under.
#[derive(Clone, Debug)]
pub struct CorpusScript {
    /// File stem (e.g. `04_retry_unreliable`).
    pub name: String,
    /// Script source text.
    pub source: String,
    /// The fault plan (empty default when no sidecar exists).
    pub plan: FaultPlan,
}

/// What one interpreter produced, projected onto the comparable axes.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Did the script as a whole succeed?
    pub success: bool,
    /// Final value of every observable variable (unset reads as `""`).
    pub bindings: BTreeMap<String, String>,
    /// Structured-trace tag → occurrence count.
    pub trace_counts: BTreeMap<&'static str, usize>,
}

/// The verdict for one corpus script across the 3-way matrix.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Corpus entry name.
    pub name: String,
    /// Simulated observation from the reference tree-walker.
    pub sim: Observation,
    /// Simulated observation from the bytecode VM.
    pub sim_byte: Observation,
    /// Real-process observation.
    pub real: Observation,
    /// Human-readable divergences (labelled by the pair that
    /// disagreed); empty means conformant on all three axes.
    pub divergences: Vec<String>,
}

impl Verdict {
    /// Conformant?
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The corpus directory shipped with this crate.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("conformance")
}

/// Load every `*.ftsh` script (sorted by name) plus its optional
/// `<stem>.plan.json` sidecar from `dir`.
pub fn discover(dir: &Path) -> Result<Vec<CorpusScript>, String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftsh"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for path in names {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let sidecar = path.with_extension("plan.json");
        let plan = if sidecar.exists() {
            let text = std::fs::read_to_string(&sidecar)
                .map_err(|e| format!("read {}: {e}", sidecar.display()))?;
            FaultPlan::parse_json(&text).map_err(|e| format!("{}: {e}", sidecar.display()))?
        } else {
            FaultPlan::new(DEFAULT_PLAN_SEED)
        };
        out.push(CorpusScript { name, source, plan });
    }
    Ok(out)
}

/// Every variable a script can observably bind: assignment targets and
/// literal `-> var` capture names, collected recursively. Loop
/// variables are deliberately excluded — their final value depends on
/// scheduling interleavings the two substrates need not share.
pub fn observable_vars(script: &Script) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    collect_vars(&script.stmts, &mut vars);
    vars
}

fn collect_vars(block: &ftsh::ast::Block, vars: &mut BTreeSet<String>) {
    for stmt in block {
        match stmt {
            Stmt::Assign { var, .. } => {
                vars.insert(var.clone());
            }
            Stmt::Command(cmd) => {
                for redir in &cmd.redirs {
                    if let Redir::Out {
                        to: RedirTarget::Variable,
                        target,
                        ..
                    } = redir
                    {
                        // Only statically-named captures are comparable.
                        if let [Seg::Lit(name)] = target.segs() {
                            vars.insert(name.to_string());
                        }
                    }
                }
            }
            Stmt::Try { body, catch, .. } => {
                collect_vars(body, vars);
                if let Some(c) = catch {
                    collect_vars(c, vars);
                }
            }
            Stmt::ForAny { body, .. } | Stmt::ForAll { body, .. } => collect_vars(body, vars),
            Stmt::If { then, els, .. } => {
                collect_vars(then, vars);
                if let Some(e) = els {
                    collect_vars(e, vars);
                }
            }
            Stmt::Function { body, .. } => collect_vars(body, vars),
            Stmt::Failure | Stmt::Success => {}
        }
    }
}

fn tag_counts(records: &[TraceRecord]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for r in records {
        *counts.entry(r.ev.tag()).or_insert(0) += 1;
    }
    counts
}

fn bindings_of(env: &Env, vars: &BTreeSet<String>) -> BTreeMap<String, String> {
    vars.iter()
        .map(|v| (v.clone(), env.get(v).to_string()))
        .collect()
}

fn basename(program: &str) -> &str {
    program.rsplit('/').next().unwrap_or(program)
}

/// The closed command model the simulated side runs against. Mirrors
/// what the generated real shims do, with virtual latencies.
fn model_command(
    spec: &CommandSpec,
    plan: &FaultPlan,
    fail_left: &mut HashMap<String, u32>,
) -> (Dur, CmdResult) {
    let tick = Dur::from_millis(1);
    match basename(spec.program()) {
        "true" => (tick, CmdResult::ok("")),
        "false" => (tick, CmdResult::fail()),
        "echo" => {
            let mut out = spec.argv[1..].join(" ");
            out.push('\n');
            (tick, CmdResult::ok(out))
        }
        "cat" => match &spec.input {
            Some(CmdInput::Data(data)) => (tick, CmdResult::ok(data.clone())),
            _ => (tick, CmdResult::fail()),
        },
        "unreliable" => {
            let name = spec.argv.get(1).cloned().unwrap_or_default();
            let left = fail_left
                .entry(name.to_string())
                .or_insert_with(|| plan.fail_first(&name));
            if *left > 0 {
                *left -= 1;
                (tick, CmdResult::fail())
            } else {
                (tick, CmdResult::ok(format!("ok {name}\n")))
            }
        }
        "slow" => {
            let secs: f64 = spec.argv.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
            (Dur::from_secs_f64(secs), CmdResult::ok("done\n"))
        }
        "noisy" => {
            // One line to each stream; stderr reaches the capture only
            // through a `->&` merge, mirroring the real shim where the
            // session pipes stderr only when `both` is set.
            let name = spec.argv.get(1).cloned().unwrap_or_default();
            let mut out = format!("out {name}\n");
            if spec.both {
                let _ = writeln!(out, "err {name}");
            }
            (tick, CmdResult::ok(out))
        }
        other => panic!("conformance model: unknown program {other:?}"),
    }
}

/// Run a corpus script through the default simulated interpreter.
pub fn run_sim(script: &Script, plan: &FaultPlan, shimdir: &str) -> Observation {
    run_sim_kind(script, plan, shimdir, VmKind::selected())
}

/// Run a corpus script through the simulated interpreter `kind`
/// (tree-walker or bytecode VM) under `plan`.
pub fn run_sim_kind(script: &Script, plan: &FaultPlan, shimdir: &str, kind: VmKind) -> Observation {
    let vars = observable_vars(script);
    let mut env = Env::new();
    env.set("shimdir", shimdir);
    let mut vm = Vm::with_kind(kind, script, env, plan.seed);
    let buf = Arc::new(Mutex::new(VecSink::new()));
    let sink: SharedSink = buf.clone();
    vm.set_tracer(sink, 0);

    let mut fail_left: HashMap<String, u32> = HashMap::new();
    // (due, token, result): completions sorted by time then token so
    // delivery order is a pure function of the plan.
    let mut pending: Vec<(Time, u64, CmdResult)> = Vec::new();
    let mut now = Time::ZERO;
    for step in 0.. {
        assert!(step < MAX_SIM_STEPS, "sim executor stalled (harness bug)");
        let tick = vm.tick(now);
        for eff in tick.effects {
            match eff {
                Effect::Start { token, spec, .. } => {
                    let (delay, result) = model_command(&spec, plan, &mut fail_left);
                    pending.push((now.saturating_add(delay), token, result));
                }
                Effect::Cancel { token } => pending.retain(|p| p.1 != token),
            }
        }
        match tick.status {
            VmStatus::Done { success } => {
                let records = buf.lock().unwrap().take();
                return Observation {
                    success,
                    bindings: bindings_of(vm.env(), &vars),
                    trace_counts: tag_counts(&records),
                };
            }
            VmStatus::Running { next_wake } => {
                pending.sort_by_key(|p| (p.0, p.1));
                let next_cmd = pending.first().map(|p| p.0);
                let next = match (next_cmd, next_wake) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => panic!("vm waits on nothing (harness bug)"),
                };
                now = now.max(next);
                while pending.first().is_some_and(|p| p.0 <= now) {
                    let (_, token, result) = pending.remove(0);
                    vm.complete(token, result);
                }
            }
        }
    }
    unreachable!()
}

static SHIM_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generate the real-side shim directory for `plan`: executable
/// `unreliable`, `slow`, and `noisy` shell scripts, plus per-name
/// `fail-NAME` budget files under `state/` seeded from the plan's
/// `cmd-fail-first` specs — the on-disk mirror of the sim model.
pub fn write_shims(plan: &FaultPlan) -> std::io::Result<PathBuf> {
    let dir = std::env::temp_dir().join(format!(
        "eg-conform-{}-{}",
        std::process::id(),
        SHIM_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let state = dir.join("state");
    std::fs::create_dir_all(&state)?;

    let unreliable = r#"#!/bin/sh
# Fail while the plan-seeded budget file holds a positive count.
f="$(dirname "$0")/state/fail-$1"
n=0
[ -f "$f" ] && n=$(cat "$f")
if [ "$n" -gt 0 ]; then
  echo $((n - 1)) > "$f"
  exit 1
fi
echo "ok $1"
"#;
    let slow = r#"#!/bin/sh
sleep "$1"
echo done
"#;
    let noisy = r#"#!/bin/sh
echo "out $1"
echo "err $1" >&2
"#;
    for (name, body) in [("unreliable", unreliable), ("slow", slow), ("noisy", noisy)] {
        let path = dir.join(name);
        std::fs::write(&path, body)?;
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755))?;
        }
    }
    let mut budgets: BTreeMap<&str, u32> = BTreeMap::new();
    for spec in &plan.specs {
        if let FaultKind::CmdFailFirst { program, n } = &spec.kind {
            *budgets.entry(program.as_str()).or_insert(0) += n;
        }
    }
    for (program, n) in budgets {
        std::fs::write(state.join(format!("fail-{program}")), format!("{n}\n"))?;
    }
    Ok(dir)
}

/// Run a corpus script against real processes under `plan`.
pub fn run_real(script: &Script, plan: &FaultPlan) -> std::io::Result<Observation> {
    let vars = observable_vars(script);
    let shimdir = write_shims(plan)?;
    let mut env = Env::new();
    env.set("shimdir", shimdir.to_string_lossy().to_string());
    let vm = Vm::with_env_seed(script, env, plan.seed);
    let buf = Arc::new(Mutex::new(VecSink::new()));
    let sink: SharedSink = buf.clone();
    let opts = procman::RealOptions {
        kill_grace: std::time::Duration::from_millis(100),
        seed: Some(plan.seed),
        handle_sigterm: false,
    };
    let report = procman::run_vm_traced(vm, &opts, Some(sink));
    let records = buf.lock().unwrap().take();
    let _ = std::fs::remove_dir_all(&shimdir);
    Ok(Observation {
        success: report.success,
        bindings: bindings_of(&report.final_env, &vars),
        trace_counts: tag_counts(&records),
    })
}

/// Diff two observations into human-readable divergences, with the
/// default `sim`/`real` side labels.
pub fn diff(sim: &Observation, real: &Observation) -> Vec<String> {
    diff_labeled(sim, real, "sim", "real")
}

/// Diff two observations, naming each side (`tree`, `byte`, `real`,
/// …) in the rendered divergences.
pub fn diff_labeled(a: &Observation, b: &Observation, an: &str, bn: &str) -> Vec<String> {
    let mut out = Vec::new();
    if a.success != b.success {
        out.push(format!(
            "status: {an}={} {bn}={}",
            verdict_word(a.success),
            verdict_word(b.success)
        ));
    }
    for (var, av) in &a.bindings {
        let bv = b.bindings.get(var).map(String::as_str).unwrap_or("");
        if av != bv {
            out.push(format!("binding {var}: {an}={av:?} {bn}={bv:?}"));
        }
    }
    let tags: BTreeSet<&&str> = a.trace_counts.keys().chain(b.trace_counts.keys()).collect();
    for tag in tags {
        let ac = a.trace_counts.get(*tag).copied().unwrap_or(0);
        let bc = b.trace_counts.get(*tag).copied().unwrap_or(0);
        if ac != bc {
            out.push(format!("trace {tag}: {an}={ac} {bn}={bc}"));
        }
    }
    out
}

fn verdict_word(success: bool) -> &'static str {
    if success {
        "success"
    } else {
        "failure"
    }
}

/// Run one corpus entry through the full 3-way matrix — tree-walker,
/// bytecode VM, and real processes — and diff every pair.
pub fn check(entry: &CorpusScript) -> Result<Verdict, String> {
    let script = parse(&entry.source).map_err(|e| format!("{}: parse: {e}", entry.name))?;
    let sim = run_sim_kind(&script, &entry.plan, "/shim", VmKind::Tree);
    let sim_byte = run_sim_kind(&script, &entry.plan, "/shim", VmKind::Bytecode);
    let real = run_real(&script, &entry.plan).map_err(|e| format!("{}: real: {e}", entry.name))?;
    let mut divergences = diff_labeled(&sim, &sim_byte, "tree", "byte");
    divergences.extend(diff_labeled(&sim, &real, "tree", "real"));
    divergences.extend(diff_labeled(&sim_byte, &real, "byte", "real"));
    Ok(Verdict {
        name: entry.name.clone(),
        sim,
        sim_byte,
        real,
        divergences,
    })
}

/// Run the whole corpus. Errors are harness failures (unreadable
/// corpus, unparseable script), not divergences.
pub fn run_corpus(dir: &Path) -> Result<Vec<Verdict>, String> {
    let corpus = discover(dir)?;
    if corpus.is_empty() {
        return Err(format!("empty corpus at {}", dir.display()));
    }
    corpus.iter().map(check).collect()
}

/// Render verdicts as a markdown divergence report (the CI artifact).
pub fn report(verdicts: &[Verdict]) -> String {
    let diverged = verdicts.iter().filter(|v| !v.ok()).count();
    let mut out = String::new();
    let _ = writeln!(out, "# Tree ↔ bytecode ↔ real conformance report\n");
    let _ = writeln!(
        out,
        "{} scripts, {} conformant, {} diverged.\n",
        verdicts.len(),
        verdicts.len() - diverged,
        diverged
    );
    let _ = writeln!(out, "| script | tree | byte | real | divergences |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for v in verdicts {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            v.name,
            verdict_word(v.sim.success),
            verdict_word(v.sim_byte.success),
            verdict_word(v.real.success),
            if v.ok() {
                "—".to_string()
            } else {
                v.divergences.join("; ")
            }
        );
    }
    for v in verdicts.iter().filter(|v| !v.ok()) {
        let _ = writeln!(out, "\n## {}\n", v.name);
        for d in &v.divergences {
            let _ = writeln!(out, "- {d}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observable_vars_sees_assigns_captures_and_nesting() {
        let script = parse(
            "x=1\n\
             try 2 times\n  echo hi -> cap\ncatch\n  y=2\nend\n\
             if ${x} .eq. 1\n  z=3\nelse\n  w=4\nend\n\
             forany v in a b\n  echo ${v} -> inner\nend\n",
        )
        .unwrap();
        let vars = observable_vars(&script);
        let want: BTreeSet<String> = ["x", "cap", "y", "z", "w", "inner"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(vars, want, "loop var v must be excluded");
    }

    #[test]
    fn sim_model_honours_fail_first_budget() {
        let mut plan = FaultPlan::new(1);
        plan.specs.push(simgrid::faults::FaultSpec::physics(
            FaultKind::CmdFailFirst {
                program: "alpha".into(),
                n: 2,
            },
        ));
        let script =
            parse("try 5 times every 10 ms\n  ${shimdir}/unreliable alpha -> out\nend\n").unwrap();
        let obs = run_sim(&script, &plan, "/shim");
        assert!(obs.success);
        assert_eq!(obs.bindings["out"], "ok alpha");
        // Two failed attempts, one success.
        assert_eq!(obs.trace_counts.get("cmd-start").copied().unwrap_or(0), 3);
    }

    #[test]
    fn diff_flags_each_axis() {
        let a = Observation {
            success: true,
            bindings: [("x".to_string(), "1".to_string())].into_iter().collect(),
            trace_counts: [("cmd-start", 2)].into_iter().collect(),
        };
        let mut b = a.clone();
        assert!(diff(&a, &b).is_empty());
        b.success = false;
        b.bindings.insert("x".into(), "2".into());
        b.trace_counts.insert("cmd-start", 3);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 3, "{d:?}");
    }
}
