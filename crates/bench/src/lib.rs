//! Shared plumbing for the figure harness: table printing and JSON
//! emission of [`simgrid::SeriesSet`] results.

#![warn(missing_docs)]

pub mod conformance;
pub mod coord_live;
pub mod live;
pub mod swarm;

use simgrid::SeriesSet;
use std::path::{Path, PathBuf};

/// The workspace root (where `BENCH_engine.json` and `results/` land).
pub fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Where figure data lands (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    workspace_root().join("results")
}

/// Print a figure as an aligned table and persist it as JSON and CSV.
/// Returns the JSON path.
pub fn emit(name: &str, set: &SeriesSet) -> std::io::Result<PathBuf> {
    println!("{}", set.to_table());
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, set.to_json_pretty())?;
    std::fs::write(dir.join(format!("{name}.csv")), set.to_csv())?;
    Ok(path)
}

/// A compact textual summary of a figure for EXPERIMENTS.md-style
/// reporting: last value of each series.
pub fn summarize(set: &SeriesSet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{}:", set.title);
    for s in &set.series {
        let _ = write!(out, " {}={:.1}", s.name, s.last().unwrap_or(f64::NAN));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::Series;

    #[test]
    fn summarize_lists_series() {
        let mut set = SeriesSet::new("T", "x", "y");
        let s = set.add(Series::new("A"));
        s.push_xy(1.0, 2.0);
        assert_eq!(summarize(&set), "T: A=2.0");
    }

    #[test]
    fn results_dir_is_under_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
