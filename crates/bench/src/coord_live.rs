//! The live coordinated-workload smoke: the fig8 all-reduce re-run on
//! real wall-clock against a real `gridd` daemon.
//!
//! N real rank threads barrier through the daemon's file server, whose
//! physics mirror the sim's `OpQueue`: a single-server FIFO where a
//! blind `get` miss is an expensive directory scan
//! ([`GriddConfig::file_miss_service`]) while the `stat` probe answers
//! from the directory cache for free. One rank dies mid-run and
//! rejoins after a downtime — the live analogue of the sim's
//! `client-kill` + restart — and while the barrier holds for the
//! straggler, the Aloha population's blind polling congests the FIFO
//! that the straggler's own re-publish then has to queue behind. The
//! Ethernet population senses instead, so its time-to-global-completion
//! is predicted (by the fig8 sim) to be no worse — the daemon either
//! confirms that ordering or the smoke fails.

use gridd::{GridConn, GridError, GriddConfig};
use gridworld::figures::{by_name_with_plan, Scale};
use retry::Discipline;
use simgrid::faults::FaultPlan;
use simgrid::{Series, SeriesSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Parameters of the live all-reduce.
#[derive(Clone, Debug)]
pub struct CoordLiveOptions {
    /// Rank threads (the barrier width).
    pub ranks: usize,
    /// Rounds each rank must complete.
    pub rounds: u32,
    /// Service time of a put or a get hit at the file server.
    pub file_service: Duration,
    /// Service time of a blind get miss (the expensive scan).
    pub file_miss_service: Duration,
    /// Base compute time of one partial (plus per-rank jitter).
    pub compute: Duration,
    /// How long the killed rank stays down before rejoining.
    pub downtime: Duration,
    /// Seed for jitter streams and the sim prediction.
    pub seed: u64,
    /// Where artifacts land.
    pub out_dir: PathBuf,
}

impl CoordLiveOptions {
    /// The CI smoke: 4 ranks, 2 rounds, one kill + rejoin.
    pub fn quick(seed: u64, out_dir: PathBuf) -> CoordLiveOptions {
        CoordLiveOptions {
            ranks: 4,
            rounds: 2,
            file_service: Duration::from_millis(3),
            file_miss_service: Duration::from_millis(120),
            compute: Duration::from_millis(60),
            downtime: Duration::from_millis(1500),
            seed,
            out_dir,
        }
    }
}

/// What one discipline's live run produced.
#[derive(Clone, Debug)]
pub struct CoordOutcome {
    /// Which discipline ran.
    pub discipline: Discipline,
    /// Wall-clock until every rank finished every round — the live
    /// time-to-global-completion.
    pub wall_s: f64,
    /// Blind fetch misses the daemon served (expensive scans).
    pub misses: u64,
    /// Free carrier-sense reads (`stat`).
    pub senses: u64,
    /// Successful fetches.
    pub hits: u64,
    /// Ranks killed mid-run.
    pub kills: u64,
    /// Ranks that rejoined after a kill.
    pub restarts: u64,
}

/// The whole smoke: both disciplines plus the fig8 sim prediction.
#[derive(Clone, Debug)]
pub struct CoordReport {
    /// Aloha's live outcome.
    pub aloha: CoordOutcome,
    /// Ethernet's live outcome.
    pub ethernet: CoordOutcome,
    /// Sim-predicted final-round global completion (aloha, ethernet),
    /// from quick-scale fig8.
    pub sim_done: (f64, f64),
    /// Did the live daemon confirm the predicted Ethernet ≤ Aloha
    /// time-to-global-completion ordering?
    pub confirms: bool,
}

/// Deterministic per-(rank, round) jitter in `0..span`, from the seed.
fn jitter(seed: u64, rank: usize, round: u32, span: Duration) -> Duration {
    let mut x = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(round) << 32;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    Duration::from_micros(x % (span.as_micros().max(1) as u64))
}

/// Reconnect until the daemon answers (it never goes down in this
/// smoke; this only rides out the rejoin race).
fn connect(addr: &str, rank: usize) -> GridConn {
    loop {
        match GridConn::connect(addr, rank as u32, Duration::from_secs(10)) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Retry a poisoned-connection operation once on a fresh connection.
fn with_retry<T>(
    conn: &mut GridConn,
    addr: &str,
    rank: usize,
    mut op: impl FnMut(&mut GridConn) -> Result<T, GridError>,
) -> Result<T, GridError> {
    match op(conn) {
        Err(GridError::Io(_) | GridError::Proto(_)) => {
            *conn = connect(addr, rank);
            op(conn)
        }
        r => r,
    }
}

/// One rank's life: `rounds` barriered rounds. The designated kill
/// rank drops its connection at the start of round 1's compute, sleeps
/// the downtime, reconnects and re-runs the round — everyone else's
/// barrier holds until its late partial lands.
#[allow(clippy::too_many_arguments)]
fn run_rank(
    discipline: Discipline,
    addr: String,
    rank: usize,
    opts: CoordLiveOptions,
    kill_rank: usize,
) -> (u64, u64) {
    let mut conn = connect(&addr, rank);
    let mut kills = 0u64;
    let mut restarts = 0u64;
    let mut round = 0u32;
    while round < opts.rounds {
        if rank == kill_rank && round == opts.rounds - 1 && kills == 0 {
            // The mid-run kill: drop the connection, stay down, rejoin.
            drop(std::mem::replace(&mut conn, connect(&addr, rank)));
            kills += 1;
            std::thread::sleep(opts.downtime);
            restarts += 1;
        }
        // Compute the partial.
        std::thread::sleep(opts.compute + jitter(opts.seed, rank, round, opts.compute));
        // Publish it.
        let key = |r: usize, k: u32| format!("r{r}.{k}");
        loop {
            match with_retry(&mut conn, &addr, rank, |c| c.put(&key(rank, round), b"v")) {
                Ok(()) => break,
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        // The barrier: every peer's partial for this round.
        match discipline {
            Discipline::Ethernet => {
                // Sense the carrier (free stats) until the whole round
                // is present, with exponential backoff; then fetch —
                // all hits.
                let mut delay = Duration::from_millis(25);
                loop {
                    let mut landed = 0usize;
                    for peer in 0..opts.ranks {
                        let k = key(peer, round);
                        if matches!(with_retry(&mut conn, &addr, rank, |c| c.stat(&k)), Ok(true)) {
                            landed += 1;
                        }
                    }
                    if landed == opts.ranks {
                        break;
                    }
                    std::thread::sleep(delay + jitter(opts.seed, rank, round ^ 0x55, delay));
                    delay = (delay * 2).min(Duration::from_millis(400));
                }
                for peer in 0..opts.ranks {
                    let k = key(peer, round);
                    let _ = with_retry(&mut conn, &addr, rank, |c| c.get(&k));
                }
            }
            Discipline::Aloha | Discipline::Fixed => {
                // Poll each peer blindly: every miss is an expensive
                // scan holding the file server.
                for peer in 0..opts.ranks {
                    let k = key(peer, round);
                    loop {
                        match with_retry(&mut conn, &addr, rank, |c| c.get(&k)) {
                            Ok(_) => break,
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                }
            }
        }
        round += 1;
    }
    (kills, restarts)
}

/// Run one discipline's rank population against a fresh daemon.
pub fn run_coord_discipline(
    discipline: Discipline,
    opts: &CoordLiveOptions,
) -> std::io::Result<CoordOutcome> {
    let cfg = GriddConfig {
        slots: opts.ranks as u64,
        file_service: opts.file_service,
        file_miss_service: opts.file_miss_service,
        deadline: Duration::from_secs(10),
        plan: FaultPlan::new(opts.seed),
        ..GriddConfig::default()
    };
    let handle = gridd::start(cfg)?;
    let addr = handle.addr().to_string();

    let t0 = Instant::now();
    let threads: Vec<_> = (0..opts.ranks)
        .map(|rank| {
            let addr = addr.clone();
            let o = opts.clone();
            std::thread::spawn(move || run_rank(discipline, addr, rank, o, 1))
        })
        .collect();
    let mut kills = 0u64;
    let mut restarts = 0u64;
    for t in threads {
        let (k, r) = t.join().expect("rank thread");
        kills += k;
        restarts += r;
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let (clients, _) = handle.snapshot();
    handle.shutdown();
    Ok(CoordOutcome {
        discipline,
        wall_s,
        misses: clients.iter().map(|c| c.get_err).sum(),
        senses: clients.iter().map(|c| c.df_calls).sum(),
        hits: clients.iter().map(|c| c.get_ok).sum(),
        kills,
        restarts,
    })
}

/// Quick-scale fig8 prediction: the final round's global completion
/// time for one discipline.
fn sim_done(discipline: Discipline, seed: u64) -> f64 {
    by_name_with_plan("fig8", Scale::Quick, seed, false, None)
        .and_then(|run| run.set.get(discipline.label()).and_then(Series::last))
        .unwrap_or(f64::NAN)
}

/// Run the whole smoke: Aloha then Ethernet against fresh daemons,
/// compare with the quick-scale fig8 prediction, and write
/// `coord_live.json` + `coord_live.md` under `out_dir`.
pub fn run_coord_live(opts: &CoordLiveOptions) -> std::io::Result<CoordReport> {
    std::fs::create_dir_all(&opts.out_dir)?;
    let aloha = run_coord_discipline(Discipline::Aloha, opts)?;
    let ethernet = run_coord_discipline(Discipline::Ethernet, opts)?;
    let sim = (
        sim_done(Discipline::Aloha, opts.seed),
        sim_done(Discipline::Ethernet, opts.seed),
    );
    // "Ethernet ≥ Aloha" in outcome terms: its global completion is no
    // later. Live wall-clock gets a small tolerance for scheduler
    // noise on loaded CI runners.
    let sim_predicts = sim.1 <= sim.0;
    let live_confirms = ethernet.wall_s <= aloha.wall_s * 1.05;
    let confirms = sim_predicts && live_confirms;

    let mut set = SeriesSet::new(
        "Live all-reduce: time-to-global-completion",
        "discipline (0 = Aloha, 1 = Ethernet)",
        "wall-clock (s)",
    );
    let mut s = Series::new("wall_s");
    s.push_xy(0.0, aloha.wall_s);
    s.push_xy(1.0, ethernet.wall_s);
    set.add(s);
    std::fs::write(opts.out_dir.join("coord_live.json"), set.to_json_pretty())?;
    std::fs::write(
        opts.out_dir.join("coord_live.md"),
        render_table(&aloha, &ethernet, sim, confirms, opts),
    )?;
    Ok(CoordReport {
        aloha,
        ethernet,
        sim_done: sim,
        confirms,
    })
}

/// The live-vs-sim comparison table (also reproduced in
/// EXPERIMENTS.md).
fn render_table(
    aloha: &CoordOutcome,
    ethernet: &CoordOutcome,
    sim: (f64, f64),
    confirms: bool,
    opts: &CoordLiveOptions,
) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Live all-reduce vs. simulation (fig8)\n");
    let _ = writeln!(
        md,
        "{} real ranks x {} rounds, one kill + rejoin ({} ms down), seed {}.\n",
        opts.ranks,
        opts.rounds,
        opts.downtime.as_millis(),
        opts.seed
    );
    let _ = writeln!(
        md,
        "| discipline | live wall (s) | blind misses | sense reads | fetch hits | kills | rejoins | sim final-round done (s) |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for (out, s) in [(aloha, sim.0), (ethernet, sim.1)] {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {} | {} | {} | {} | {} | {:.1} |",
            out.discipline.label(),
            out.wall_s,
            out.misses,
            out.senses,
            out.hits,
            out.kills,
            out.restarts,
            s,
        );
    }
    let _ = writeln!(
        md,
        "\nSim predicts Ethernet ≤ Aloha on time-to-global-completion; the live daemon **{}** it.",
        if confirms {
            "CONFIRMS"
        } else {
            "DOES NOT CONFIRM"
        }
    );
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let span = Duration::from_millis(60);
        let a = jitter(7, 2, 1, span);
        assert_eq!(a, jitter(7, 2, 1, span));
        assert!(a < span);
        assert_ne!(jitter(7, 2, 1, span), jitter(7, 3, 1, span));
    }
}
