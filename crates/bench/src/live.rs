//! The live arena: the fig2/fig3 submission study re-run on real
//! wall-clock against a real `gridd` daemon.
//!
//! Where the simulator multiplexes hundreds of virtual clients over
//! one event queue, the arena runs N *real* clients over real TCP at
//! a daemon whose schedd crashes under real concurrent overload (plus
//! whatever the fault plan forces). The population is a
//! [`crate::swarm`] — lightweight state machines multiplexed on one
//! epoll reactor, batching verbs over persistent connections — so the
//! arena scales from the historical 8 clients to 1000+ on one core.
//! The swarm emits the PR 2 trace schema in memory; the merged trace
//! feeds the existing postmortem with zero schema changes.
//!
//! This is also the multi-client extension of the conformance
//! harness: the full-scale simulation predicts the Ethernet>Aloha ordering
//! of completed jobs, and the daemon either confirms it (`CONFIRMS`)
//! or not — the verdict lands in `results/live_arena.md`.

use gridd::{ClientSnapshot, GriddConfig};
use gridworld::figures::{by_name_with_plan, Scale};
use retry::{BackoffPolicy, Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use simgrid::trace::TraceRecord;
use simgrid::{Series, SeriesSet};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Arena parameters. Defaults are the full-scale (≥8 clients) run;
/// [`LiveOptions::quick`] shrinks to the 3-client CI race.
#[derive(Clone, Debug)]
pub struct LiveOptions {
    /// Concurrent real clients per discipline.
    pub clients: usize,
    /// Jobs each client tries to push through the schedd.
    pub jobs: usize,
    /// How long the schedd holds a slot per accepted job. Longer
    /// service = longer busy windows = more blind submits per window.
    pub service: Duration,
    /// Uncovered submits (net of grant decay) that crash the schedd.
    /// Must sit above the occasional Ethernet sense-then-submit race
    /// but below a blind stampede's sustained pressure.
    pub crash_overloads: u32,
    /// Seed for VM jitter streams and the sim prediction.
    pub seed: u64,
    /// Where traces, postmortems, and the comparison table land.
    pub out_dir: PathBuf,
}

impl LiveOptions {
    /// Full arena: 8 concurrent clients, 6 jobs each, 2 service slots.
    pub fn full(seed: u64, out_dir: PathBuf) -> LiveOptions {
        LiveOptions {
            clients: 8,
            jobs: 6,
            service: Duration::from_millis(150),
            crash_overloads: 5,
            seed,
            out_dir,
        }
    }

    /// CI smoke arena: 3 concurrent clients, 3 jobs each, 1 slot.
    /// Slower service and a lower crash threshold keep the physics
    /// proportionate: 2 waiting clients can still crash the schedd by
    /// hammering, but a single sense race cannot.
    pub fn quick(seed: u64, out_dir: PathBuf) -> LiveOptions {
        LiveOptions {
            clients: 3,
            jobs: 3,
            service: Duration::from_millis(300),
            crash_overloads: 3,
            seed,
            out_dir,
        }
    }

    /// An arena scaled to an arbitrary population (the `--live-clients`
    /// path). Small populations keep the historical full-arena physics;
    /// larger ones shorten service and scale the crash threshold with
    /// the population, so an Aloha stampede still crashes the schedd
    /// while Ethernet's occasional stale-sense races do not.
    pub fn sized(clients: usize, seed: u64, out_dir: PathBuf) -> LiveOptions {
        if clients <= 8 {
            return LiveOptions {
                clients,
                ..LiveOptions::full(seed, out_dir)
            };
        }
        LiveOptions {
            clients,
            jobs: 4,
            service: Duration::from_millis(100),
            crash_overloads: (clients / 8).max(6) as u32,
            seed,
            out_dir,
        }
    }
}

/// What one discipline's run produced.
#[derive(Clone, Debug)]
pub struct DisciplineOutcome {
    /// Which discipline ran.
    pub discipline: Discipline,
    /// Per-client daemon counters at the end of the run.
    pub clients: Vec<ClientSnapshot>,
    /// Schedd crashes during the run (overload + plan-forced).
    pub crashes: u64,
    /// Merged, time-sorted trace of every client.
    pub trace: Vec<TraceRecord>,
    /// Wall-clock the whole population took.
    pub wall_s: f64,
    /// Client-observed dispatch rate (responses per second).
    pub dispatch_rate: f64,
    /// Requests the population put on the wire.
    pub verbs_sent: u64,
    /// Malformed or mismatched frames seen by clients (must be 0).
    pub protocol_errors: u64,
}

impl DisciplineOutcome {
    /// Total jobs the schedd serviced to completion.
    pub fn jobs_done(&self) -> u64 {
        self.clients.iter().map(|c| c.submit_ok).sum()
    }

    /// Total carrier-sense reads.
    pub fn df_calls(&self) -> u64 {
        self.clients.iter().map(|c| c.df_calls).sum()
    }

    /// Total submissions refused busy or down.
    pub fn failed_submits(&self) -> u64 {
        self.clients
            .iter()
            .map(|c| c.submit_busy + c.submit_down + c.submit_lost)
            .sum()
    }
}

/// The whole arena: both disciplines plus the sim prediction.
#[derive(Clone, Debug)]
pub struct ArenaReport {
    /// Aloha's live outcome.
    pub aloha: DisciplineOutcome,
    /// Ethernet's live outcome.
    pub ethernet: DisciplineOutcome,
    /// Full-scale-sim predicted jobs (aloha, ethernet) — fig2/fig3.
    pub sim_jobs: (f64, f64),
    /// Did the daemon confirm the predicted Ethernet>Aloha ordering?
    pub confirms: bool,
}

/// Locate a sibling binary of the current executable (`gridctl` next
/// to `figures`, or one directory up from a test binary in `deps/`).
pub fn find_sibling(name: &str) -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..3 {
        let cand = dir.join(name);
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// The arena's adversarial schedule: forced schedd kills on top of
/// whatever the daemon's own overload physics produces. Identical for
/// both disciplines — the paper's point is how each *reacts*.
pub fn arena_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with(FaultSpec::repeating(
        Time::from_secs(1),
        Dur::from_secs(4),
        2,
        FaultKind::ScheddKill {
            downtime: Some(Dur::from_millis(1200)),
        },
    ))
}

/// The daemon the arena runs against: a genuinely contended schedd —
/// the slot pool is far smaller than the population, service takes
/// real time, and a *sustained* stampede crashes it. Every blind
/// (Aloha) submit while the pool is drained pushes the overload
/// counter toward the crash threshold; Ethernet's sense probe defers
/// instead. The threshold is high enough that the occasional
/// sense-then-submit race (two Ethernet clients both seeing the last
/// free slot) does not crash the schedd — only a population that
/// keeps hammering a drained pool does, which is the paper's point.
pub fn arena_config(opts: &LiveOptions) -> GriddConfig {
    GriddConfig {
        slots: (opts.clients / 4).max(1) as u64,
        service: opts.service,
        crash_overloads: opts.crash_overloads,
        downtime: Duration::from_secs(3),
        deadline: Duration::from_secs(8),
        plan: arena_plan(opts.seed),
        ..GriddConfig::default()
    }
}

/// The ftsh script one live client runs: `jobs` sequential submission
/// units, each an attempt-budgeted `try` whose failure is absorbed so
/// the next unit still runs. The Ethernet variant prefixes the
/// carrier-sense probe — one failing command when the medium is busy,
/// turning the stampede into a deferral.
pub fn client_script(
    discipline: Discipline,
    gridctl: &str,
    addr: &str,
    client: usize,
    jobs: usize,
) -> String {
    let mut s = String::new();
    for k in 1..=jobs {
        let _ = writeln!(s, "try for 6 seconds or 8 times");
        if discipline.uses_carrier_sense() {
            let _ = writeln!(s, "  {gridctl} {addr} {client} sense 1");
        }
        let _ = writeln!(s, "  {gridctl} {addr} {client} submit job-{client}-{k}");
        let _ = writeln!(s, "catch");
        let _ = writeln!(s, "  true");
        let _ = writeln!(s, "end");
    }
    s
}

/// The live backoff policy: the paper's exponential shape scaled to
/// the arena's seconds-long window (100 ms base, 2 s cap). Fixed runs
/// with no backoff, as always.
pub fn live_backoff(discipline: Discipline) -> BackoffPolicy {
    match discipline {
        Discipline::Fixed => BackoffPolicy::None,
        _ => BackoffPolicy::exponential(Dur::from_millis(100), Dur::from_secs(2)),
    }
}

/// Run one discipline's population against a fresh daemon: one epoll
/// swarm of lightweight clients over persistent connections, replacing
/// the old thread + `gridctl`-process-per-verb design.
pub fn run_discipline(
    discipline: Discipline,
    opts: &LiveOptions,
) -> std::io::Result<DisciplineOutcome> {
    std::fs::create_dir_all(&opts.out_dir)?;
    let handle = gridd::start(arena_config(opts))?;
    let addr = handle.addr().to_string();
    let label = discipline.label().to_lowercase();

    let mut sopts =
        crate::swarm::SwarmOptions::arena(discipline, opts.clients, opts.jobs, addr, opts.seed);
    sopts.backoff = live_backoff(discipline);
    let mut report = crate::swarm::run(sopts)?;

    let (clients, crashes) = handle.snapshot();
    handle.shutdown();

    // The merged in-memory trace lands exactly where the old per-client
    // JSONL merge did; the postmortem pipeline is unchanged.
    let trace = std::mem::take(&mut report.trace);
    let merged = opts.out_dir.join(format!("live-{label}.jsonl"));
    std::fs::write(&merged, simgrid::trace::to_jsonl(&trace))?;
    let summary = simgrid::TraceSummary::from_records(&trace);
    std::fs::write(
        opts.out_dir.join(format!("live-{label}-postmortem.txt")),
        summary.render(),
    )?;

    Ok(DisciplineOutcome {
        discipline,
        clients,
        crashes,
        trace,
        wall_s: report.wall_s,
        dispatch_rate: report.dispatch_rate(),
        verbs_sent: report.verbs_sent,
        protocol_errors: report.protocol_errors,
    })
}

/// Jobs the full-scale simulation predicts for a submit-timeline figure.
fn sim_prediction(fig: &str, seed: u64) -> f64 {
    by_name_with_plan(fig, Scale::Full, seed, false, None)
        .and_then(|run| run.set.get("Jobs Submitted").and_then(Series::last))
        .unwrap_or(f64::NAN)
}

/// Run the whole arena: Aloha then Ethernet against fresh daemons,
/// compare with the full-scale sim fig2/fig3 prediction, and write
/// `live_arena.json` + `live_arena.md` under `out_dir`.
pub fn run_arena(opts: &LiveOptions) -> std::io::Result<ArenaReport> {
    let aloha = run_discipline(Discipline::Aloha, opts)?;
    let ethernet = run_discipline(Discipline::Ethernet, opts)?;
    let sim_jobs = (
        sim_prediction("fig2", opts.seed),
        sim_prediction("fig3", opts.seed),
    );
    let sim_predicts = sim_jobs.1 > sim_jobs.0;
    let live_confirms = ethernet.jobs_done() > aloha.jobs_done();
    let confirms = sim_predicts && live_confirms;

    // results/live_arena.json — per-client completions per discipline,
    // in the same metrics shape every figure uses.
    let mut set = SeriesSet::new(
        "Live arena: jobs completed per client",
        "client",
        "jobs completed",
    );
    for out in [&aloha, &ethernet] {
        let mut s = Series::new(out.discipline.label());
        for c in &out.clients {
            s.push_xy(c.client as f64, c.submit_ok as f64);
        }
        set.add(s);
    }
    std::fs::create_dir_all(&opts.out_dir)?;
    std::fs::write(opts.out_dir.join("live_arena.json"), set.to_json_pretty())?;
    std::fs::write(
        opts.out_dir.join("live_arena.md"),
        render_table(&aloha, &ethernet, sim_jobs, confirms, opts),
    )?;

    Ok(ArenaReport {
        aloha,
        ethernet,
        sim_jobs,
        confirms,
    })
}

/// The live-vs-sim comparison table (also reproduced in
/// EXPERIMENTS.md).
fn render_table(
    aloha: &DisciplineOutcome,
    ethernet: &DisciplineOutcome,
    sim_jobs: (f64, f64),
    confirms: bool,
    opts: &LiveOptions,
) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Live arena vs. simulation (fig2/fig3)\n");
    let _ = writeln!(
        md,
        "{} concurrent real clients x {} jobs, seed {}.\n",
        opts.clients, opts.jobs, opts.seed
    );
    let _ = writeln!(
        md,
        "| discipline | live jobs done | live failed submits | live sense reads | schedd crashes | dispatch (verbs/s) | wall (s) | sim jobs (full sim) |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for (out, sim) in [(aloha, sim_jobs.0), (ethernet, sim_jobs.1)] {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {:.0} | {:.1} | {:.0} |",
            out.discipline.label(),
            out.jobs_done(),
            out.failed_submits(),
            out.df_calls(),
            out.crashes,
            out.dispatch_rate,
            out.wall_s,
            sim,
        );
    }
    let _ = writeln!(
        md,
        "\nSim predicts Ethernet > Aloha; the live daemon **{}** it.",
        if confirms {
            "CONFIRMS"
        } else {
            "DOES NOT CONFIRM"
        }
    );
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scripts_parse_for_every_discipline() {
        for d in Discipline::ALL {
            let text = client_script(d, "/usr/bin/gridctl", "127.0.0.1:7177", 3, 4);
            let script = ftsh::parse(&text).expect("script parses");
            let printed = ftsh::pretty(&script);
            assert_eq!(ftsh::parse(&printed).expect("reparses"), script);
            assert_eq!(
                text.matches("submit job-3-").count(),
                4,
                "one submit per unit"
            );
            assert_eq!(
                text.matches("sense 1").count(),
                if d.uses_carrier_sense() { 4 } else { 0 },
                "carrier sense iff Ethernet"
            );
        }
    }

    #[test]
    fn arena_plan_forces_schedd_kills() {
        let plan = arena_plan(7);
        let kills: Vec<_> = plan
            .specs
            .iter()
            .filter(|s| matches!(s.kind, FaultKind::ScheddKill { .. }))
            .collect();
        assert_eq!(kills.len(), 1);
        assert_eq!(kills[0].count, 2);
    }
}
