//! The client swarm: N lightweight grid clients multiplexed on one
//! epoll reactor, replacing the live arena's thread-per-client ftsh
//! VMs (and the `gridctl` process per verb they forked).
//!
//! Each client is a few hundred bytes of state machine running the
//! exact discipline the old generated scripts expressed — `try for 6
//! seconds or 8 times`, exponential backoff, Ethernet's carrier-sense
//! prelude, failures absorbed by an empty `catch` — but batching its
//! verbs over one *persistent* connection instead of a fresh process
//! and TCP handshake per verb. That is what lets the arena scale from
//! 8 real clients to 1000+ on one core, and it emits the same PR 2
//! trace schema ([`simgrid::trace::TraceEv`]) in memory, so the merged
//! trace feeds the existing postmortem unchanged.
//!
//! The reactor reuses the daemon's own readiness toolkit
//! ([`gridd::poll`]): one epoll instance for sockets, one timer wheel
//! for staggered starts, backoff sleeps, and unit deadlines.

use gridd::poll::{set_nonblocking, Epoll, Event, TimerWheel};
use gridd::proto::{frame_into, FrameBuf, Request, Response};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retry::{BackoffPolicy, Discipline, Dur, Time};
use simgrid::trace::{TraceEv, TraceRecord};
use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

/// Swarm parameters. One swarm runs one discipline's population.
#[derive(Clone, Debug)]
pub struct SwarmOptions {
    /// The retry discipline every client runs.
    pub discipline: Discipline,
    /// Population size.
    pub clients: usize,
    /// Jobs each client pushes through the schedd, sequentially.
    pub jobs: usize,
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Seed for per-client jitter streams.
    pub seed: u64,
    /// Per-unit budget: `try for <this> or <attempts> times`.
    pub unit_budget: Duration,
    /// Per-unit attempt cap.
    pub unit_attempts: u32,
    /// Backoff between failed attempts.
    pub backoff: BackoffPolicy,
    /// Client starts are spread uniformly over this window, so a
    /// thousand connects do not land in one accept burst.
    pub stagger: Duration,
}

impl SwarmOptions {
    /// The arena's standard client behaviour: `try for 6 seconds or 8
    /// times`, 100 ms–2 s exponential backoff, starts spread over
    /// ~0.5 ms per client (at least the old arena's 200 ms).
    pub fn arena(
        discipline: Discipline,
        clients: usize,
        jobs: usize,
        addr: String,
        seed: u64,
    ) -> SwarmOptions {
        SwarmOptions {
            discipline,
            clients,
            jobs,
            addr,
            seed,
            unit_budget: Duration::from_secs(6),
            unit_attempts: 8,
            backoff: BackoffPolicy::exponential(Dur::from_millis(100), Dur::from_secs(2)),
            stagger: Duration::from_millis((clients as u64 / 2).max(200)),
        }
    }
}

/// What the swarm did, measured at the client side.
#[derive(Clone, Debug, Default)]
pub struct SwarmReport {
    /// Merged, time-sorted trace of every client.
    pub trace: Vec<TraceRecord>,
    /// Requests written to the wire.
    pub verbs_sent: u64,
    /// Well-formed responses decoded.
    pub responses: u64,
    /// Frames that failed to decode or had the wrong kind — any
    /// nonzero value is a wire-protocol bug.
    pub protocol_errors: u64,
    /// Re-connects after resets/timeouts (first connects excluded).
    pub reconnects: u64,
    /// Wall-clock for the whole population.
    pub wall_s: f64,
}

impl SwarmReport {
    /// Client-observed dispatch rate: decoded responses per second of
    /// wall-clock — the scalability headline.
    pub fn dispatch_rate(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.responses as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// What a client is waiting on.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    /// Stagger timer not fired yet.
    Waiting,
    /// Sense probe in flight (Ethernet only).
    Sensing,
    /// Submit in flight.
    Submitting,
    /// Backoff timer pending.
    Backoff,
    /// All units finished.
    Done,
}

/// Timer completions. `unit` guards staleness: a timer scheduled for
/// unit k is ignored once the client has moved past unit k.
enum Tev {
    Start { id: usize },
    BackoffDone { id: usize, unit: usize },
    UnitDeadline { id: usize, unit: usize },
}

struct Client {
    stream: Option<TcpStream>,
    frames: FrameBuf,
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// 1-based current unit (job); 0 before the start timer.
    unit: usize,
    /// Attempts used in the current unit.
    attempt: u32,
    unit_deadline: Instant,
    rng: StdRng,
    ever_connected: bool,
}

/// The reactor: clients, sockets, timers, and the collected report.
struct Swarm {
    opts: SwarmOptions,
    epoll: Epoll,
    timers: TimerWheel<Tev>,
    clients: Vec<Client>,
    start: Instant,
    report: SwarmReport,
    done_count: usize,
}

/// Run one swarm to completion (or a safety cap: every unit budget
/// plus slack). Returns the client-side report; daemon-side counters
/// come from [`gridd::GriddHandle::snapshot`].
pub fn run(opts: SwarmOptions) -> io::Result<SwarmReport> {
    let start = Instant::now();
    let cap =
        start + opts.unit_budget * (opts.jobs as u32 + 1) + opts.stagger + Duration::from_secs(10);
    let clients: Vec<Client> = (0..opts.clients)
        .map(|id| Client {
            stream: None,
            frames: FrameBuf::new(),
            out: Vec::new(),
            out_pos: 0,
            phase: Phase::Waiting,
            unit: 0,
            attempt: 0,
            unit_deadline: start,
            rng: StdRng::seed_from_u64(opts.seed ^ (id as u64).wrapping_mul(0x9E37)),
            ever_connected: false,
        })
        .collect();
    let mut swarm = Swarm {
        epoll: Epoll::new()?,
        timers: TimerWheel::new(start),
        clients,
        start,
        report: SwarmReport::default(),
        done_count: 0,
        opts,
    };
    // Spread the starts across the stagger window.
    let n = swarm.opts.clients.max(1);
    for id in 0..swarm.opts.clients {
        let offset = swarm.opts.stagger.mul_f64(id as f64 / n as f64);
        swarm.timers.schedule(start + offset, Tev::Start { id });
    }

    let mut events: Vec<Event> = Vec::new();
    let mut fired: Vec<Tev> = Vec::new();
    while swarm.done_count < swarm.opts.clients {
        let now = Instant::now();
        if now >= cap {
            break;
        }
        swarm.timers.advance(now, &mut fired);
        for tev in fired.drain(..) {
            swarm.on_timer(tev);
        }
        if swarm.done_count >= swarm.opts.clients {
            break;
        }
        let timeout = swarm
            .timers
            .next_deadline()
            .map_or(cap, |at| at.min(cap))
            .saturating_duration_since(Instant::now());
        swarm.epoll.wait(&mut events, Some(timeout))?;
        for ev in &events {
            let id = ev.token as usize;
            if ev.writable {
                swarm.flush(id);
            }
            if ev.readable || ev.hangup {
                swarm.on_readable(id);
            }
        }
    }
    swarm.report.wall_s = start.elapsed().as_secs_f64();
    swarm.report.trace.sort_by_key(|r| (r.t, r.client, r.task));
    Ok(swarm.report)
}

impl Swarm {
    fn trace(&mut self, id: usize, ev: TraceEv) {
        self.report.trace.push(TraceRecord {
            t: Time::from_micros(self.start.elapsed().as_micros() as u64),
            client: id as i64,
            task: 0,
            ev,
        });
    }

    // ------------------------------------------------------------ wiring

    /// Connect (or reconnect) client `id`'s persistent socket. Uses a
    /// blocking localhost connect — microseconds — then flips the fd
    /// non-blocking for the reactor.
    fn ensure_connected(&mut self, id: usize) -> bool {
        if self.clients[id].stream.is_some() {
            return true;
        }
        let Ok(stream) = TcpStream::connect(&self.opts.addr) else {
            return false;
        };
        let _ = stream.set_nodelay(true);
        if set_nonblocking(stream.as_raw_fd()).is_err()
            || self
                .epoll
                .add(stream.as_raw_fd(), id as u64, true, false)
                .is_err()
        {
            return false;
        }
        if self.clients[id].ever_connected {
            self.report.reconnects += 1;
        }
        let c = &mut self.clients[id];
        c.ever_connected = true;
        c.stream = Some(stream);
        c.frames = FrameBuf::new();
        c.out.clear();
        c.out_pos = 0;
        true
    }

    fn drop_stream(&mut self, id: usize) {
        if let Some(stream) = self.clients[id].stream.take() {
            let _ = self.epoll.delete(stream.as_raw_fd());
        }
        let c = &mut self.clients[id];
        c.frames = FrameBuf::new();
        c.out.clear();
        c.out_pos = 0;
    }

    /// Queue a request on the persistent connection and push bytes.
    fn send(&mut self, id: usize, req: &Request) {
        if !self.ensure_connected(id) {
            self.on_conn_lost(id);
            return;
        }
        frame_into(&mut self.clients[id].out, &req.encode());
        self.report.verbs_sent += 1;
        self.flush(id);
    }

    /// Push queued bytes; on `WouldBlock` arm write interest.
    fn flush(&mut self, id: usize) {
        let Some(mut stream) = self.clients[id].stream.take() else {
            return;
        };
        let (dead, blocked) = {
            let c = &mut self.clients[id];
            let mut dead = false;
            let mut blocked = false;
            while c.out_pos < c.out.len() {
                match stream.write(&c.out[c.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => c.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        blocked = true;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && !blocked {
                c.out.clear();
                c.out_pos = 0;
            }
            (dead, blocked)
        };
        if dead {
            let _ = self.epoll.delete(stream.as_raw_fd());
            drop(stream);
            self.on_conn_lost(id);
            return;
        }
        let _ = self
            .epoll
            .modify(stream.as_raw_fd(), id as u64, true, blocked);
        self.clients[id].stream = Some(stream);
    }

    fn on_readable(&mut self, id: usize) {
        let Some(mut stream) = self.clients[id].stream.take() else {
            return;
        };
        let mut scratch = [0u8; 4096];
        let mut dead = false;
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => self.clients[id].frames.extend(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            let _ = self.epoll.delete(stream.as_raw_fd());
            drop(stream);
        } else {
            self.clients[id].stream = Some(stream);
        }
        // Process every complete frame already received — a response
        // may complete the attempt even if the daemon closed right
        // after writing it.
        loop {
            match self.clients[id].frames.next_frame() {
                Ok(Some(payload)) => match Response::decode(&payload) {
                    Ok(resp) => {
                        self.report.responses += 1;
                        self.on_response(id, resp);
                    }
                    Err(_) => {
                        self.report.protocol_errors += 1;
                        self.drop_stream(id);
                        self.on_conn_lost(id);
                        return;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    self.report.protocol_errors += 1;
                    self.drop_stream(id);
                    self.on_conn_lost(id);
                    return;
                }
            }
        }
        // Only report the loss if the responses above did not already
        // move the client on (e.g. onto a fresh connection).
        if dead && self.clients[id].stream.is_none() {
            self.on_conn_lost(id);
        }
    }

    /// The connection reset under us (daemon msg-loss, swallow close,
    /// backpressure drop, or a refused connect). An in-flight verb
    /// becomes a failed attempt; the next attempt reconnects.
    fn on_conn_lost(&mut self, id: usize) {
        self.drop_stream(id);
        let phase = self.clients[id].phase;
        match phase {
            Phase::Sensing | Phase::Submitting => {
                let program = if phase == Phase::Sensing {
                    "sense"
                } else {
                    "submit"
                };
                self.trace(
                    id,
                    TraceEv::CmdEnd {
                        program: program.into(),
                        ok: false,
                    },
                );
                self.attempt_failed(id);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------- discipline

    fn on_timer(&mut self, tev: Tev) {
        match tev {
            Tev::Start { id } => {
                if self.clients[id].phase == Phase::Waiting {
                    self.start_unit(id);
                }
            }
            Tev::BackoffDone { id, unit } => {
                let c = &self.clients[id];
                if c.phase == Phase::Backoff && c.unit == unit {
                    self.start_attempt(id);
                }
            }
            Tev::UnitDeadline { id, unit } => {
                let (phase, cur) = {
                    let c = &self.clients[id];
                    (c.phase, c.unit)
                };
                if phase == Phase::Done || cur != unit {
                    return;
                }
                match phase {
                    Phase::Sensing | Phase::Submitting => {
                        // Mid-attempt: cancel the in-flight verb. Its
                        // response must not bleed into the next unit's
                        // request stream, so the persistent connection
                        // is sacrificed — exactly what killing the old
                        // per-verb gridctl process did.
                        let program = if phase == Phase::Sensing {
                            "sense"
                        } else {
                            "submit"
                        };
                        self.trace(
                            id,
                            TraceEv::CmdKilled {
                                program: program.into(),
                            },
                        );
                        self.drop_stream(id);
                        self.trace(id, TraceEv::TryTimeout);
                    }
                    _ => self.trace(id, TraceEv::TryExhausted),
                }
                self.unit_failed(id);
            }
        }
    }

    fn start_unit(&mut self, id: usize) {
        let finished = {
            let c = &mut self.clients[id];
            c.unit += 1;
            c.unit > self.opts.jobs
        };
        if finished {
            self.clients[id].phase = Phase::Done;
            self.done_count += 1;
            self.trace(id, TraceEv::UnitDone { ok: true });
            self.drop_stream(id);
            return;
        }
        let now = Instant::now();
        let deadline = now + self.opts.unit_budget;
        let unit = {
            let c = &mut self.clients[id];
            c.attempt = 0;
            c.unit_deadline = deadline;
            c.unit
        };
        self.timers
            .schedule(deadline, Tev::UnitDeadline { id, unit });
        self.start_attempt(id);
    }

    fn start_attempt(&mut self, id: usize) {
        let now = Instant::now();
        let exhausted = {
            let c = &self.clients[id];
            c.attempt >= self.opts.unit_attempts || now >= c.unit_deadline
        };
        if exhausted {
            self.trace(id, TraceEv::TryExhausted);
            self.unit_failed(id);
            return;
        }
        let (attempt, budget) = {
            let c = &mut self.clients[id];
            c.attempt += 1;
            (c.attempt, c.unit_deadline.saturating_duration_since(now))
        };
        self.trace(
            id,
            TraceEv::AttemptStart {
                attempt,
                budget: Some(Dur::from_micros(budget.as_micros() as u64)),
            },
        );
        if self.opts.discipline.uses_carrier_sense() {
            self.clients[id].phase = Phase::Sensing;
            self.trace(
                id,
                TraceEv::CmdStart {
                    program: "sense".into(),
                },
            );
            self.send(id, &Request::Df { client: id as u32 });
        } else {
            self.send_submit(id);
        }
    }

    fn send_submit(&mut self, id: usize) {
        self.clients[id].phase = Phase::Submitting;
        let job = format!("job-{id}-{}", self.clients[id].unit);
        self.trace(
            id,
            TraceEv::CmdStart {
                program: "submit".into(),
            },
        );
        self.send(
            id,
            &Request::Submit {
                client: id as u32,
                job,
            },
        );
    }

    fn on_response(&mut self, id: usize, resp: Response) {
        match self.clients[id].phase {
            Phase::Sensing => match resp {
                Response::Free { slots } => {
                    self.trace(id, TraceEv::CarrierSense { free: slots });
                    self.trace(
                        id,
                        TraceEv::CmdEnd {
                            program: "sense".into(),
                            ok: slots > 0,
                        },
                    );
                    if slots > 0 {
                        self.send_submit(id);
                    } else {
                        // Medium busy: defer instead of stampeding.
                        self.trace(id, TraceEv::Deferral);
                        self.attempt_failed(id);
                    }
                }
                _ => {
                    self.report.protocol_errors += 1;
                    self.drop_stream(id);
                    self.on_conn_lost(id);
                }
            },
            Phase::Submitting => match resp {
                Response::Ok { .. } => {
                    let attempt = self.clients[id].attempt;
                    self.trace(
                        id,
                        TraceEv::CmdEnd {
                            program: "submit".into(),
                            ok: true,
                        },
                    );
                    self.trace(id, TraceEv::AttemptOk { attempt });
                    self.start_unit(id);
                }
                Response::Err { .. } => {
                    self.trace(
                        id,
                        TraceEv::CmdEnd {
                            program: "submit".into(),
                            ok: false,
                        },
                    );
                    self.attempt_failed(id);
                }
                _ => {
                    self.report.protocol_errors += 1;
                    self.drop_stream(id);
                    self.on_conn_lost(id);
                }
            },
            // Late frame after a phase change — only possible through a
            // protocol bug, since timeouts drop the connection.
            _ => self.report.protocol_errors += 1,
        }
    }

    /// One attempt failed: back off and re-admit, budget permitting.
    fn attempt_failed(&mut self, id: usize) {
        let now = Instant::now();
        let backoff = self.opts.backoff;
        let verdict = {
            let c = &mut self.clients[id];
            if c.attempt >= self.opts.unit_attempts {
                None
            } else {
                let delay = backoff.delay_after(c.attempt, &mut c.rng);
                let wake = now + delay.to_std();
                if wake >= c.unit_deadline {
                    // The budget cannot cover another admission.
                    None
                } else {
                    Some((c.attempt, delay, wake, c.unit))
                }
            }
        };
        match verdict {
            None => {
                self.trace(id, TraceEv::TryExhausted);
                self.unit_failed(id);
            }
            Some((attempt, delay, wake, unit)) => {
                self.clients[id].phase = Phase::Backoff;
                self.trace(id, TraceEv::Backoff { attempt, delay });
                self.timers.schedule(wake, Tev::BackoffDone { id, unit });
            }
        }
    }

    /// The unit's `try` failed; the empty `catch` absorbs it and the
    /// client moves to its next job.
    fn unit_failed(&mut self, id: usize) {
        self.trace(id, TraceEv::CatchEntered);
        self.start_unit(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daemon(slots: u64, clients: usize) -> gridd::GriddHandle {
        gridd::start(gridd::GriddConfig {
            slots,
            service: Duration::from_millis(20),
            crash_overloads: u32::MAX, // never crash: pure throughput
            backlog: clients.max(64) * 2,
            ..gridd::GriddConfig::default()
        })
        .expect("daemon starts")
    }

    #[test]
    fn swarm_pushes_jobs_through_without_protocol_errors() {
        let handle = daemon(8, 32);
        let opts = SwarmOptions {
            stagger: Duration::from_millis(50),
            ..SwarmOptions::arena(Discipline::Ethernet, 32, 2, handle.addr().to_string(), 11)
        };
        let report = run(opts).expect("swarm runs");
        let (snaps, _) = handle.snapshot();
        handle.shutdown();
        let ok: u64 = snaps.iter().map(|c| c.submit_ok).sum();
        assert!(ok > 0, "some jobs must complete");
        assert_eq!(report.protocol_errors, 0);
        assert!(report.responses > 0);
        assert!(report.dispatch_rate() > 0.0);
        // Persistent connections batch verbs: more verbs than units.
        assert!(report.verbs_sent > 32 * 2);
    }

    #[test]
    fn aloha_swarm_runs_blind() {
        let handle = daemon(4, 16);
        let opts = SwarmOptions {
            stagger: Duration::from_millis(20),
            ..SwarmOptions::arena(Discipline::Aloha, 16, 2, handle.addr().to_string(), 12)
        };
        let report = run(opts).expect("swarm runs");
        handle.shutdown();
        assert_eq!(report.protocol_errors, 0);
        // Aloha never senses: no CarrierSense events in its trace.
        assert!(!report
            .trace
            .iter()
            .any(|r| matches!(r.ev, TraceEv::CarrierSense { .. })));
    }
}
