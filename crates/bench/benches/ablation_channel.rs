//! Ablation: the shared-channel story of §3 in isolation. Pure
//! backoff (Aloha) saturates far below carrier sense, and immediate
//! retransmission (Fixed) livelocks — the same ordering the grid
//! scenarios show, on the original medium.

use criterion::{criterion_group, criterion_main, Criterion};
use simgrid::{simulate_channel, ChannelDiscipline};

fn bench(c: &mut Criterion) {
    // Quality report (not timed): throughput at a heavy offered load.
    for d in [
        ChannelDiscipline::Fixed,
        ChannelDiscipline::Aloha,
        ChannelDiscipline::Ethernet,
    ] {
        let s = simulate_channel(d, 50, 0.05, 50_000, 1);
        eprintln!(
            "[channel] {d:?}: S={:.3} (G={:.2}, {} collisions)",
            s.throughput(),
            s.offered_load(),
            s.collisions
        );
    }

    let mut g = c.benchmark_group("ablation_channel");
    g.sample_size(10);
    for d in [
        ChannelDiscipline::Fixed,
        ChannelDiscipline::Aloha,
        ChannelDiscipline::Ethernet,
    ] {
        g.bench_function(format!("{d:?}_50x50k"), |b| {
            b.iter(|| std::hint::black_box(simulate_channel(d, 50, 0.05, 50_000, 1)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
