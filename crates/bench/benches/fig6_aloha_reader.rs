//! Figure 6 bench: the Aloha reader against a black-hole replica.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_blackhole, BlackHoleParams};
use retry::{Discipline, Dur};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_aloha_reader");
    g.sample_size(10);
    g.bench_function("aloha_900s", |b| {
        b.iter(|| {
            let o = run_blackhole(
                BlackHoleParams {
                    discipline: Discipline::Aloha,
                    ..BlackHoleParams::default()
                },
                Dur::from_secs(900),
            );
            std::hint::black_box((o.transfers, o.collisions))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
