//! Figure 5 bench: collision counts under producer contention.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_buffer, BufferParams};
use retry::{Discipline, Dur};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_buffer_collisions");
    g.sample_size(10);
    for d in [Discipline::Fixed, Discipline::Ethernet] {
        g.bench_function(format!("{d}_n40_120s"), |b| {
            b.iter(|| {
                let o = run_buffer(
                    BufferParams {
                        n_producers: 40,
                        discipline: d,
                        ..BufferParams::default()
                    },
                    Dur::from_secs(120),
                );
                std::hint::black_box(o.collisions)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
