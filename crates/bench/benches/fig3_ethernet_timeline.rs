//! Figure 3 bench: the Ethernet submitter timeline (FDs held at the
//! carrier-sense floor). Criterion times a reduced window.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::figures::{fig3_ethernet_timeline, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_ethernet_timeline");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| std::hint::black_box(fig3_ethernet_timeline(Scale::Quick, 1)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
