//! Microbenchmarks of the ftsh language machinery: lexing/parsing,
//! pretty-printing, and VM execution throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsh::{parse, pretty, SimClock, Vm, VmDriver};
use std::fmt::Write as _;

fn big_script(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        let _ = write!(
            s,
            "try for 5 minutes or 3 times\n\
               forany host in a{i} b{i} c{i}\n\
                 fetch http://${{host}}/file{i} -> out{i}\n\
                 if ${{out{i}}} .eql. ok\n\
                   success\n\
                 else\n\
                   failure\n\
                 end\n\
               end\n\
             end\n"
        );
    }
    s
}

fn bench(c: &mut Criterion) {
    let src = big_script(100);
    let script = parse(&src).unwrap();

    c.bench_function("parse_100_blocks", |b| {
        b.iter(|| std::hint::black_box(parse(&src).unwrap()));
    });

    c.bench_function("pretty_100_blocks", |b| {
        b.iter(|| std::hint::black_box(pretty(&script)));
    });

    let run_src = "try for 1 hour\n forany h in a b c\n  get ${h}\n end\nend\n";
    let run_script = parse(run_src).unwrap();
    c.bench_function("vm_run_forany", |b| {
        b.iter(|| {
            let mut d = VmDriver::new(Vm::with_seed(&run_script, 1), SimClock::new());
            let out = d.run_to_completion(|spec| {
                if spec.argv[1] == "c" {
                    Ok(String::new())
                } else {
                    Err("nope".into())
                }
            });
            std::hint::black_box(out.success())
        });
    });

    let retry_script = parse("try 100 times\n flaky\nend\n").unwrap();
    c.bench_function("vm_100_retries", |b| {
        b.iter(|| {
            let mut left = 99u32;
            let mut d = VmDriver::new(Vm::with_seed(&retry_script, 1), SimClock::new());
            let out = d.run_to_completion(|_| {
                if left > 0 {
                    left -= 1;
                    Err("flaky".into())
                } else {
                    Ok(String::new())
                }
            });
            std::hint::black_box(out.success())
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
