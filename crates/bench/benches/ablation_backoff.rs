//! Ablation: how much the randomized backoff factor matters.
//!
//! §3: "the problem will not be solved if all clients return at the
//! same instant, so some asymmetry or random factor is needed to
//! discourage cascading collisions." We run the overloaded Aloha
//! submission scenario with the paper's [1, 2) jitter, with jitter
//! removed (pure doubling — clients resynchronize), and with a
//! constant retry interval. Besides the timing, the bench prints the
//! throughput each policy achieves so the quality difference is
//! visible in the bench log.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_submission, SubmitParams};
use retry::{BackoffPolicy, Discipline, Dur};

fn run(backoff: Option<BackoffPolicy>, seed: u64) -> (u64, u64) {
    let o = run_submission(
        SubmitParams {
            n_clients: 450,
            discipline: Discipline::Aloha,
            backoff_override: backoff,
            seed,
            ..SubmitParams::default()
        },
        Dur::from_secs(120),
    );
    (o.jobs_submitted, o.crashes)
}

fn jobs(backoff: Option<BackoffPolicy>) -> u64 {
    run(backoff, 0x5eed).0
}

fn bench(c: &mut Criterion) {
    let variants: [(&str, Option<BackoffPolicy>); 3] = [
        ("jittered", None),
        (
            "no_jitter",
            Some(BackoffPolicy::ethernet().without_jitter()),
        ),
        (
            "constant_1s",
            Some(BackoffPolicy::Constant(Dur::from_secs(1))),
        ),
    ];

    // One-shot quality report (not timed), averaged over seeds so a
    // lucky crash pattern does not masquerade as a policy effect.
    const SEEDS: [u64; 5] = [1, 22, 333, 4444, 55555];
    for (name, b) in &variants {
        let (mut tj, mut tc) = (0u64, 0u64);
        for &s in &SEEDS {
            let (j, c) = run(*b, s);
            tj += j;
            tc += c;
        }
        eprintln!(
            "[ablation] aloha 450 submitters / 120 s, {name}: mean jobs={:.0} mean crashes={:.1} (over {} seeds)",
            tj as f64 / SEEDS.len() as f64,
            tc as f64 / SEEDS.len() as f64,
            SEEDS.len()
        );
    }

    let mut g = c.benchmark_group("ablation_backoff");
    g.sample_size(10);
    for (name, bo) in variants {
        g.bench_function(name, |b| b.iter(|| std::hint::black_box(jobs(bo))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
