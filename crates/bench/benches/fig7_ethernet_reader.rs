//! Figure 7 bench: the Ethernet reader (flag probe) against a
//! black-hole replica.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_blackhole, BlackHoleParams};
use retry::{Discipline, Dur};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_ethernet_reader");
    g.sample_size(10);
    g.bench_function("ethernet_900s", |b| {
        b.iter(|| {
            let o = run_blackhole(
                BlackHoleParams {
                    discipline: Discipline::Ethernet,
                    ..BlackHoleParams::default()
                },
                Dur::from_secs(900),
            );
            std::hint::black_box((o.transfers, o.deferrals))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
