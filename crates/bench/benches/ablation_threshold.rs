//! Ablation: the carrier-sense threshold of the Ethernet submitter.
//!
//! The paper fixes the threshold at 1000 free descriptors. Sweeping it
//! shows the trade-off the administrator tunes: too low and the schedd
//! crashes like Aloha; too high and clients defer unnecessarily,
//! shaving throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_submission, SubmitParams};
use retry::{Discipline, Dur};

fn run(threshold: u64) -> (u64, u64) {
    let o = run_submission(
        SubmitParams {
            n_clients: 450,
            discipline: Discipline::Ethernet,
            threshold,
            ..SubmitParams::default()
        },
        Dur::from_secs(120),
    );
    (o.jobs_submitted, o.crashes)
}

fn bench(c: &mut Criterion) {
    // Quality report (not timed).
    for t in [0u64, 100, 500, 1000, 2000, 4000] {
        let (jobs, crashes) = run(t);
        eprintln!("[threshold] {t:>5} free FDs: jobs={jobs} crashes={crashes}");
    }

    let mut g = c.benchmark_group("ablation_threshold");
    g.sample_size(10);
    for t in [0u64, 1000, 4000] {
        g.bench_function(format!("threshold_{t}"), |b| {
            b.iter(|| std::hint::black_box(run(t)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
