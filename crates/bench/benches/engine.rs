//! Engine bench: the population-scale hot paths behind every figure.
//!
//! * `vm_population_build` — constructing 500 VMs from one parsed
//!   script; with the shared AST this is 500 `Arc` bumps, not 500 deep
//!   copies.
//! * `vm_population_tick` — first tick of a 200-VM population, the
//!   allocation-lean path the driver runs millions of times. The
//!   `_traced` variant runs the same ticks with a ring sink installed,
//!   bounding what tracing costs when it *is* on (off, it is a single
//!   `Option` test — compare the two).
//! * `sweep_seq` / `sweep_par` — a fig1-style multi-point submission
//!   sweep through `gridworld::sweep` pinned to 1 vs. 4 workers (on a
//!   multi-core host the parallel one should win; see also
//!   `figures --stats`).
//! * `vm_steady_tree` / `vm_steady_bytecode` — the same
//!   interpreter-bound steady-state workload `figures --stats` records
//!   in `BENCH_engine.json`, run to completion under each `VmKind`.
//!   The bytecode row is the one the ROADMAP's ≥5× claim rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsh::{parse, Env, Vm, VmKind};
use gridworld::{run_submission, sweep, SubmitParams};
use retry::{Discipline, Dur, Time};

const READER: &str = "try for 900 seconds\n\
                        forany host in ${h1} ${h2} ${h3}\n\
                          try for 5 seconds\n\
                            wget http://${host}/flag\n\
                          end\n\
                          try for 60 seconds\n\
                            wget http://${host}/data\n\
                          end\n\
                        end\n\
                      end\n";

/// The interpreter-bound workload from `figures --stats`, shortened to
/// bench-iteration size: assignments, string conds, forany, all over
/// interpolated words, with every spawned command failing so the retry
/// loop spins the interpreter rather than the (absent) plant.
fn steady_source() -> String {
    let body = "  a=${b}\n  if ${a} .eql. base\n    c=${a}${b}\n  else\n    c=err\n  end\n  forany v in ${a} ${c}\n    d=${v}\n  end\n  e=${d}\n"
        .repeat(64);
    format!("b=base\ntry 100 times every 1 ms\n{body}  failure\nend\n")
}

/// Drive one VM through the steady workload to completion; returns ticks.
fn steady_run(kind: VmKind, script: &ftsh::ast::Script) -> u64 {
    use ftsh::vm::{CmdResult, Effect, VmStatus};
    let mut vm = Vm::with_kind(kind, script, Env::new(), 7);
    vm.set_log_detail(false);
    let mut now = Time::ZERO;
    let mut ticks = 0u64;
    let mut effects = Vec::new();
    loop {
        ticks += 1;
        let status = vm.tick_into(now, &mut effects);
        for e in effects.drain(..) {
            if let Effect::Start { token, .. } = e {
                vm.complete(token, CmdResult::fail());
            }
        }
        match status {
            VmStatus::Done { .. } => break,
            VmStatus::Running { next_wake } => {
                if let Some(w) = next_wake {
                    now = now.max(w);
                }
            }
        }
    }
    ticks
}

fn submission_point(d: Discipline, n: usize) -> u64 {
    run_submission(
        SubmitParams {
            n_clients: n,
            discipline: d,
            ..SubmitParams::default()
        },
        Dur::from_secs(45),
    )
    .jobs_submitted
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    let script = parse(READER).unwrap();
    g.bench_function("vm_population_build_500", |b| {
        b.iter(|| {
            let vms: Vec<Vm> = (0..500).map(|i| Vm::with_seed(&script, i)).collect();
            std::hint::black_box(vms.len())
        });
    });

    g.bench_function("vm_population_tick_200", |b| {
        b.iter(|| {
            let mut vms: Vec<Vm> = (0..200).map(|i| Vm::with_seed(&script, i)).collect();
            let effects: usize = vms
                .iter_mut()
                .map(|vm| vm.tick(Time::ZERO).effects.len())
                .sum();
            std::hint::black_box(effects)
        });
    });

    g.bench_function("vm_population_tick_200_traced", |b| {
        use ftsh::trace::{shared, RingSink};
        b.iter(|| {
            let sink = shared(RingSink::new(4096));
            let mut vms: Vec<Vm> = (0..200)
                .map(|i| {
                    let mut vm = Vm::with_seed(&script, i);
                    vm.set_tracer(sink.clone(), i as i64);
                    vm
                })
                .collect();
            let effects: usize = vms
                .iter_mut()
                .map(|vm| vm.tick(Time::ZERO).effects.len())
                .sum();
            std::hint::black_box(effects)
        });
    });

    let steady = parse(&steady_source()).unwrap();
    g.bench_function("vm_steady_tree", |b| {
        b.iter(|| std::hint::black_box(steady_run(VmKind::Tree, &steady)));
    });
    g.bench_function("vm_steady_bytecode", |b| {
        b.iter(|| std::hint::black_box(steady_run(VmKind::Bytecode, &steady)));
    });

    let points: Vec<(Discipline, usize)> = Discipline::ALL
        .iter()
        .flat_map(|&d| [25usize, 50, 100].into_iter().map(move |n| (d, n)))
        .collect();
    g.bench_function("sweep_seq", |b| {
        b.iter(|| {
            let out = sweep::map_with_threads(1, &points, |&(d, n)| submission_point(d, n));
            std::hint::black_box(out)
        });
    });
    g.bench_function("sweep_par", |b| {
        b.iter(|| {
            let out = sweep::map_with_threads(4, &points, |&(d, n)| submission_point(d, n));
            std::hint::black_box(out)
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
