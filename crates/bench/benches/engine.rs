//! Engine bench: the population-scale hot paths behind every figure.
//!
//! * `vm_population_build` — constructing 500 VMs from one parsed
//!   script; with the shared AST this is 500 `Arc` bumps, not 500 deep
//!   copies.
//! * `vm_population_tick` — first tick of a 200-VM population, the
//!   allocation-lean path the driver runs millions of times. The
//!   `_traced` variant runs the same ticks with a ring sink installed,
//!   bounding what tracing costs when it *is* on (off, it is a single
//!   `Option` test — compare the two).
//! * `sweep_seq` / `sweep_par` — a fig1-style multi-point submission
//!   sweep through `gridworld::sweep` pinned to 1 vs. 4 workers (on a
//!   multi-core host the parallel one should win; see also
//!   `figures --stats`).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsh::{parse, Vm};
use gridworld::{run_submission, sweep, SubmitParams};
use retry::{Discipline, Dur, Time};

const READER: &str = "try for 900 seconds\n\
                        forany host in ${h1} ${h2} ${h3}\n\
                          try for 5 seconds\n\
                            wget http://${host}/flag\n\
                          end\n\
                          try for 60 seconds\n\
                            wget http://${host}/data\n\
                          end\n\
                        end\n\
                      end\n";

fn submission_point(d: Discipline, n: usize) -> u64 {
    run_submission(
        SubmitParams {
            n_clients: n,
            discipline: d,
            ..SubmitParams::default()
        },
        Dur::from_secs(45),
    )
    .jobs_submitted
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    let script = parse(READER).unwrap();
    g.bench_function("vm_population_build_500", |b| {
        b.iter(|| {
            let vms: Vec<Vm> = (0..500).map(|i| Vm::with_seed(&script, i)).collect();
            std::hint::black_box(vms.len())
        });
    });

    g.bench_function("vm_population_tick_200", |b| {
        b.iter(|| {
            let mut vms: Vec<Vm> = (0..200).map(|i| Vm::with_seed(&script, i)).collect();
            let effects: usize = vms
                .iter_mut()
                .map(|vm| vm.tick(Time::ZERO).effects.len())
                .sum();
            std::hint::black_box(effects)
        });
    });

    g.bench_function("vm_population_tick_200_traced", |b| {
        use ftsh::trace::{shared, RingSink};
        b.iter(|| {
            let sink = shared(RingSink::new(4096));
            let mut vms: Vec<Vm> = (0..200)
                .map(|i| {
                    let mut vm = Vm::with_seed(&script, i);
                    vm.set_tracer(sink.clone(), i as i64);
                    vm
                })
                .collect();
            let effects: usize = vms
                .iter_mut()
                .map(|vm| vm.tick(Time::ZERO).effects.len())
                .sum();
            std::hint::black_box(effects)
        });
    });

    let points: Vec<(Discipline, usize)> = Discipline::ALL
        .iter()
        .flat_map(|&d| [25usize, 50, 100].into_iter().map(move |n| (d, n)))
        .collect();
    g.bench_function("sweep_seq", |b| {
        b.iter(|| {
            let out = sweep::map_with_threads(1, &points, |&(d, n)| submission_point(d, n));
            std::hint::black_box(out)
        });
    });
    g.bench_function("sweep_par", |b| {
        b.iter(|| {
            let out = sweep::map_with_threads(4, &points, |&(d, n)| submission_point(d, n));
            std::hint::black_box(out)
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
