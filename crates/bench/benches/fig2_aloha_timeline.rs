//! Figure 2 bench: the Aloha submitter timeline (FD sawtooth and
//! broadcast-jam spikes). Criterion times a reduced window.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::figures::{fig2_aloha_timeline, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_aloha_timeline");
    g.sample_size(10);
    g.bench_function("quick", |b| {
        b.iter(|| std::hint::black_box(fig2_aloha_timeline(Scale::Quick, 1)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
