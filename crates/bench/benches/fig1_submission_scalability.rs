//! Figure 1 bench: jobs submitted in a window vs. submitter count,
//! per discipline. Criterion times the reduced (Quick) sweep; run
//! `cargo run -p eg-bench --bin figures -- fig1` for the full figure.

use criterion::{criterion_group, criterion_main, Criterion};
use gridworld::{run_submission, SubmitParams};
use retry::{Discipline, Dur};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_submission_scalability");
    g.sample_size(10);
    for d in Discipline::ALL {
        g.bench_function(format!("{d}_n200_90s"), |b| {
            b.iter(|| {
                let o = run_submission(
                    SubmitParams {
                        n_clients: 200,
                        discipline: d,
                        ..SubmitParams::default()
                    },
                    Dur::from_secs(90),
                );
                std::hint::black_box(o.jobs_submitted)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
