//! Microbenchmarks of the simulation substrate: event-queue churn,
//! descriptor accounting, and buffer operations — the inner loops of
//! every figure run.

use criterion::{criterion_group, criterion_main, Criterion};
use retry::Time;
use simgrid::{DiskBuffer, EventQueue, FdTable};

fn bench(c: &mut Criterion) {
    c.bench_function("event_queue_100k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.schedule(Time::from_micros((i * 7919) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            std::hint::black_box(acc)
        });
    });

    c.bench_function("fd_table_1m_alloc_release", |b| {
        b.iter(|| {
            let mut t = FdTable::new(10_000);
            for _ in 0..1_000_000u32 {
                if t.alloc(20).is_err() {
                    t.release(t.in_use());
                }
            }
            std::hint::black_box(t.in_use())
        });
    });

    c.bench_function("disk_buffer_100k_file_cycle", |b| {
        b.iter(|| {
            let mut d = DiskBuffer::new(1 << 30);
            for i in 0..100_000u64 {
                let f = d.create();
                let _ = d.write(f, (i % 4096) + 1);
                let _ = d.complete(f);
                let _ = d.delete(f);
            }
            std::hint::black_box(d.collisions())
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
