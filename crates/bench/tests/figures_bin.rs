//! Smoke test of the `figures` binary in quick mode.

use std::process::Command;

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn quick_fig6_emits_table_and_json() {
    let out = figures()
        .args(["--quick", "--seed", "7", "fig6"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 6"));
    assert!(stdout.contains("Transfers"));
    let json = egbench::results_dir().join("fig6.json");
    assert!(json.exists(), "wrote {}", json.display());
}

#[test]
fn garbage_sweep_threads_warns_on_stderr() {
    let out = figures()
        .env("EG_SWEEP_THREADS", "two")
        .args(["--quick", "--seed", "7", "fig1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ignoring EG_SWEEP_THREADS=\"two\""),
        "an unusable override must be called out, got:\n{stderr}"
    );
}

#[test]
fn unknown_figure_is_an_error() {
    let st = figures().arg("fig99").status().unwrap();
    assert!(!st.success());
}

#[test]
fn bad_flag_is_a_usage_error() {
    let st = figures().arg("--frobnicate").status().unwrap();
    assert_eq!(st.code(), Some(2));
}
