//! Live ↔ sim agreement on forced `schedd-kill` loss accounting, plus
//! the arena's 1000-client stress smoke.
//!
//! The simulator has always treated an injected [`FaultKind::ScheddKill`]
//! as a real crash: the crash counter bumps and every in-flight
//! submission fails in the broadcast jam. The live daemon used to
//! disagree — the forced window rejected *new* submissions but let the
//! job already in service complete as `submit_ok`, and the slot it held
//! never came back. These tests pin both sides to the same story.

use gridd::{ErrCode, GridClient, GridError, GriddConfig};
use gridworld::scenarios::submit::{run_submission, SubmitParams};
use retry::{Discipline, Dur, Time};
use simgrid::faults::{FaultKind, FaultPlan, FaultSpec};
use std::time::Duration;

/// One forced kill mid-run: the sim must count exactly one extra crash
/// versus the identical unfaulted run, and must not gain jobs from it.
#[test]
fn sim_counts_forced_kill_as_crash() {
    let params = |plan: Option<FaultPlan>| SubmitParams {
        n_clients: 20,
        discipline: Discipline::Ethernet,
        seed: 99,
        fault_plan: plan,
        ..SubmitParams::default()
    };
    let baseline = run_submission(params(None), Dur::from_secs(120));
    assert_eq!(baseline.crashes, 0, "ethernet at n=20 must not crash");

    // Same physics, plus one forced kill at t=60s — mid-run, when
    // submissions are in flight.
    let stock = params(None);
    let plan = stock.builtin_fault_plan().with(FaultSpec::once(
        Time::from_secs(60),
        FaultKind::ScheddKill { downtime: None },
    ));
    let killed = run_submission(params(Some(plan)), Dur::from_secs(120));
    assert_eq!(killed.crashes, 1, "the forced kill is one crash");
    assert!(
        killed.jobs_submitted <= baseline.jobs_submitted,
        "a kill cannot gain jobs: {} vs baseline {}",
        killed.jobs_submitted,
        baseline.jobs_submitted
    );
}

/// The live daemon's side of the same contract: a kill window opening
/// while a job is in service counts as one crash, loses that job
/// (`submit_lost`, the broadcast jam), and hands back a full slot pool
/// when the window closes — mirroring the sim's `crash_after`, which
/// fails the serving connection and releases its descriptors.
#[test]
fn live_daemon_matches_sim_kill_accounting() {
    let cfg = GriddConfig {
        slots: 2,
        service: Duration::from_millis(500),
        crash_overloads: 100,
        downtime: Duration::from_secs(2),
        deadline: Duration::from_secs(5),
        plan: FaultPlan::new(99).with(FaultSpec::once(
            Time::from_micros(150_000),
            FaultKind::ScheddKill {
                downtime: Some(Dur::from_millis(300)),
            },
        )),
        ..GriddConfig::default()
    };
    let h = gridd::start(cfg).unwrap();
    let addr = h.addr().to_string();
    let victim = {
        let addr = addr.clone();
        std::thread::spawn(move || GridClient::new(addr, 1).submit("victim"))
    };
    // The kill window [150ms, 450ms) opens while the victim is in
    // service; its 500ms completion lands in the next crash epoch.
    assert!(
        matches!(
            victim.join().unwrap(),
            Err(GridError::Server(ErrCode::Down, _))
        ),
        "in-service job must be lost in the forced kill"
    );
    let c = GridClient::new(addr, 0);
    assert_eq!(c.df().unwrap(), 2, "full slot pool after the window");
    let (clients, crashes) = h.snapshot();
    assert_eq!(crashes, 1, "the forced kill is one crash, as in the sim");
    let victim_row = clients.iter().find(|s| s.client == 1).unwrap();
    assert_eq!(
        (victim_row.submit_lost, victim_row.submit_ok),
        (1, 0),
        "{victim_row:?}"
    );
    h.shutdown();
}

/// The 1000-client arena smoke: one epoll swarm against one daemon,
/// quick physics. Gate: jobs complete and the wire stays clean. Run
/// with `cargo test --release -- --ignored stress` (CI's gridd-stress
/// job does; it is too heavy for the default debug test sweep).
#[test]
#[ignore = "1000-client stress; run explicitly with -- --ignored"]
fn stress_swarm_1000_clients() {
    let opts = egbench::live::LiveOptions::sized(1000, 4242, std::env::temp_dir());
    let h = gridd::start(egbench::live::arena_config(&opts)).unwrap();
    let mut sopts = egbench::swarm::SwarmOptions::arena(
        Discipline::Ethernet,
        opts.clients,
        opts.jobs,
        h.addr().to_string(),
        opts.seed,
    );
    sopts.backoff = egbench::live::live_backoff(Discipline::Ethernet);
    let report = egbench::swarm::run(sopts).unwrap();
    h.shutdown();
    let ok_units = report
        .trace
        .iter()
        .filter(|r| matches!(r.ev, simgrid::trace::TraceEv::UnitDone { ok: true }))
        .count();
    assert_eq!(
        report.protocol_errors, 0,
        "wire must stay clean at 1000 clients"
    );
    assert!(
        ok_units > 0,
        "the arena must push jobs through: {} responses, {} reconnects",
        report.responses,
        report.reconnects
    );
    assert!(
        report.dispatch_rate() > 100.0,
        "dispatch collapsed: {:.0} verbs/s",
        report.dispatch_rate()
    );
}
