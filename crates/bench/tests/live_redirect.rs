//! The `->>` append and `->&` stderr-merge capture forms, verified
//! against the live daemon's `put`/`get` path — real `gridctl`
//! processes over TCP, not shell shims — complementing the VM-vs-real
//! conformance corpus (scripts 14 and 15).

use gridd::GriddConfig;
use procman::RealOptions;
use std::time::Duration;

/// The daemon the redirection scripts talk to: instant service, no
/// faults — this test is about the capture plumbing, not contention.
fn calm_config() -> GriddConfig {
    GriddConfig {
        service: Duration::from_millis(1),
        ..GriddConfig::default()
    }
}

#[test]
fn append_and_stderr_merge_capture_the_live_put_path() {
    let Some(gridctl) = egbench::live::find_sibling("gridctl") else {
        eprintln!("skipping: gridctl not built (cargo build -p eg-gridd)");
        return;
    };
    let h = gridd::start(calm_config()).expect("daemon starts");
    let addr = h.addr();
    let g = gridctl.display();

    // `->` overwrites; `->>` accumulates the file's contents across
    // repeated gets; `->&` folds gridctl's stderr diagnostic into the
    // capture when the get fails (exit 1 absorbed by the try/catch).
    let text = format!(
        "{g} {addr} 0 put f.txt hello grid -> stored\n\
         {g} {addr} 0 get f.txt -> first\n\
         {g} {addr} 0 get f.txt ->> twice\n\
         {g} {addr} 0 get f.txt ->> twice\n\
         try 1 time\n\
         \x20 {g} {addr} 0 get missing ->& merged\n\
         catch\n\
         \x20 true\n\
         end\n"
    );
    let script = ftsh::parse(&text).expect("script parses");
    let report = procman::run_script(&script, &RealOptions::default());
    assert!(report.success, "script failed: {:?}", report.log);

    let env = &report.final_env;
    assert_eq!(env.get("stored"), "10 bytes");
    assert_eq!(env.get("first"), "hello grid");
    assert_eq!(env.get("twice"), "hello gridhello grid");
    assert!(
        env.get("merged").contains("gridctl:"),
        "stderr diagnostic should be merged into the capture, got {:?}",
        env.get("merged")
    );
    h.shutdown();
}
