//! Tier-1 gate: the conformance corpus runs through the full 3-way
//! matrix (tree-walker, bytecode VM, real processes) with zero
//! unexplained divergences.

use egbench::conformance::{corpus_dir, report, run_corpus};

#[test]
fn corpus_is_conformant_across_substrates() {
    let verdicts = run_corpus(&corpus_dir()).expect("conformance harness");
    assert!(
        verdicts.len() >= 20,
        "corpus must hold at least 20 scripts, found {}",
        verdicts.len()
    );
    let diverged: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.ok())
        .map(|v| v.name.as_str())
        .collect();
    assert!(
        diverged.is_empty(),
        "interpreters disagree on {diverged:?}\n{}",
        report(&verdicts)
    );
}
