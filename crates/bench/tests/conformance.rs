//! Tier-1 gate: the conformance corpus runs through both interpreters
//! with zero unexplained divergences.

use egbench::conformance::{corpus_dir, report, run_corpus};

#[test]
fn corpus_is_conformant_across_substrates() {
    let verdicts = run_corpus(&corpus_dir()).expect("conformance harness");
    assert!(
        verdicts.len() >= 10,
        "corpus must hold at least 10 scripts, found {}",
        verdicts.len()
    );
    let diverged: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.ok())
        .map(|v| v.name.as_str())
        .collect();
    assert!(
        diverged.is_empty(),
        "sim and real disagree on {diverged:?}\n{}",
        report(&verdicts)
    );
}
