//! Property tests for the time and backoff primitives.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use retry::time::parse_duration;
use retry::{BackoffPolicy, Dur, Time};

proptest! {
    /// Time + Dur arithmetic is consistent: (t + d) - t == d whenever
    /// no saturation occurs.
    #[test]
    fn add_then_sub_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = Time::from_micros(t);
        let dur = Dur::from_micros(d);
        prop_assert_eq!((time + dur) - time, dur);
    }

    /// Duration addition is commutative and associative under
    /// saturation.
    #[test]
    fn dur_add_commutes(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (Dur::from_micros(a), Dur::from_micros(b));
        prop_assert_eq!(a + b, b + a);
    }

    /// `saturating_since` is the inverse of addition and clamps
    /// negative spans to zero.
    #[test]
    fn saturating_since_clamps(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (Time::from_micros(a), Time::from_micros(b));
        if a >= b {
            prop_assert_eq!(ta.saturating_since(tb), Dur::from_micros(a - b));
        } else {
            prop_assert_eq!(ta.saturating_since(tb), Dur::ZERO);
        }
    }

    /// mul_f64 by a factor in [1, 2] stays within [d, 2d] (+1us for
    /// rounding).
    #[test]
    fn mul_f64_bounds(us in 0u64..u64::MAX / 4, k in 1.0f64..2.0) {
        let d = Dur::from_micros(us);
        let m = d.mul_f64(k);
        prop_assert!(m >= d);
        prop_assert!(m.as_micros() <= us.saturating_mul(2) + 1);
    }

    /// Duration parsing accepts every canonical unit spelling and
    /// scales linearly.
    #[test]
    fn parse_duration_scales(n in 1u64..10_000) {
        prop_assert_eq!(parse_duration(n, "seconds"), Some(Dur::from_secs(n)));
        prop_assert_eq!(parse_duration(n, "minutes"), Some(Dur::from_mins(n)));
        prop_assert_eq!(parse_duration(n, "ms"), Some(Dur::from_millis(n)));
        prop_assert_eq!(
            parse_duration(n, "minutes").unwrap().as_secs(),
            60 * n
        );
    }

    /// Backoff is monotone in the failure count when unjittered.
    #[test]
    fn unjittered_backoff_is_monotone(k in 1u32..40) {
        let mut rng = StdRng::seed_from_u64(0);
        let p = BackoffPolicy::ethernet().without_jitter();
        let a = p.delay_after(k, &mut rng);
        let b = p.delay_after(k + 1, &mut rng);
        prop_assert!(b >= a);
    }

    /// §4's backoff window: after the k-th consecutive failure the
    /// jittered delay lies in [c, 2c) with c = min(base·2^(k-1), cap)
    /// — the random factor spreads within one octave, and the one-hour
    /// cap binds *before* jitter, so no delay ever reaches 2·cap.
    /// (+2 µs tolerance for f64 rounding in mul_f64.)
    #[test]
    fn ethernet_backoff_window_and_cap(k in 1u32..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = BackoffPolicy::ethernet();
        let base = Dur::from_secs(1);
        let cap = Dur::from_hours(1);
        let c = base.mul_f64(2f64.powi((k - 1).min(63) as i32)).min(cap);
        let d = p.delay_after(k, &mut rng);
        prop_assert!(d >= c, "k={} delay {} under floor {}", k, d, c);
        prop_assert!(
            d.as_micros() < c.as_micros().saturating_mul(2) + 2,
            "k={} delay {} above ceiling 2*{}", k, d, c
        );
        prop_assert!(d.as_micros() < cap.as_micros() * 2 + 2);
        // Without jitter the cap is exact at every attempt count.
        prop_assert!(p.without_jitter().delay_after(k, &mut rng) <= cap);
    }

    /// Display uses the largest exact unit: whole hours print as
    /// hours, whole non-hour minutes as minutes.
    #[test]
    fn display_of_whole_units(n in 1u64..1000) {
        prop_assert_eq!(Dur::from_secs(n * 3600).to_string(), format!("{n}h"));
        if n % 60 != 0 {
            prop_assert_eq!(Dur::from_secs(n * 60).to_string(), format!("{n}m"));
        }
    }
}
