//! Client disciplines: Fixed, Aloha, and Ethernet.
//!
//! Section 5 of the paper evaluates three client algorithms against
//! every contended resource:
//!
//! * **Fixed** — "aggressively repeats its assigned work without delay
//!   and without regard to any sort of failure";
//! * **Aloha** — the ordinary ftsh `try`: exponential backoff with a
//!   random factor, but resources are consumed at will and collisions
//!   are only detected after the fact;
//! * **Ethernet** — the same `try`, plus "a small piece of code to
//!   perform carrier sense before accessing a resource".

use crate::backoff::BackoffPolicy;
use crate::budget::TryBudget;
use crate::time::Dur;

/// The three client algorithms of §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// Immediate blind retry, no backoff, no sensing.
    Fixed,
    /// Exponential backoff with jitter, no sensing.
    Aloha,
    /// Exponential backoff with jitter plus carrier sense.
    Ethernet,
}

impl Discipline {
    /// All three, in the order the paper's figures list them.
    pub const ALL: [Discipline; 3] = [Discipline::Ethernet, Discipline::Aloha, Discipline::Fixed];

    /// The delay policy this discipline applies between failures.
    pub fn backoff(self) -> BackoffPolicy {
        match self {
            Discipline::Fixed => BackoffPolicy::None,
            Discipline::Aloha | Discipline::Ethernet => BackoffPolicy::ethernet(),
        }
    }

    /// A per-work-unit budget as used in the submission scenario
    /// (`try for 5 minutes`), under this discipline's backoff.
    pub fn budget_for(self, limit: Dur) -> TryBudget {
        TryBudget::for_time(limit).with_backoff(self.backoff())
    }

    /// Whether the client measures the resource before consuming it.
    pub fn uses_carrier_sense(self) -> bool {
        matches!(self, Discipline::Ethernet)
    }

    /// The label the paper's figure legends use.
    pub fn label(self) -> &'static str {
        match self {
            Discipline::Fixed => "Fixed",
            Discipline::Aloha => "Aloha",
            Discipline::Ethernet => "Ethernet",
        }
    }
}

impl std::fmt::Display for Discipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Discipline {
    type Err = String;
    fn from_str(s: &str) -> Result<Discipline, String> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" => Ok(Discipline::Fixed),
            "aloha" => Ok(Discipline::Aloha),
            "ethernet" => Ok(Discipline::Ethernet),
            other => Err(format!("unknown discipline: {other}")),
        }
    }
}

/// The outcome of a carrier-sense measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CarrierDecision {
    /// Capacity appears available: proceed to consume the resource.
    Clear,
    /// The medium is busy: fail this attempt immediately (cheaply) so
    /// the surrounding `try` backs off.
    Defer,
}

/// Anything that can measure whether a shared resource has capacity.
///
/// In the paper this is a shell fragment (`cut -f2 /proc/sys/fs/file-nr`
/// compared against 1000, or free-space estimation in the buffer
/// scenario); here it is a trait so the simulator and the real shell
/// share the decision logic.
pub trait CarrierSense {
    /// Probe the medium and decide whether to proceed.
    fn sense(&mut self) -> CarrierDecision;
}

/// Carrier sense on a measured amount of *free* capacity: clear while
/// the probe reports at least `threshold` units free.
///
/// This is exactly the paper's submission client, which defers while
/// fewer than 1000 file descriptors are free.
///
/// ```
/// use retry::{CarrierDecision, CarrierSense, FreeCapacitySense};
///
/// let mut free = 2048u64;
/// let mut sense = FreeCapacitySense::new(|| free, 1000);
/// assert_eq!(sense.sense(), CarrierDecision::Clear);
/// ```
pub struct FreeCapacitySense<F> {
    probe: F,
    threshold: u64,
}

impl<F: FnMut() -> u64> FreeCapacitySense<F> {
    /// Build from a probe returning free units and a minimum threshold.
    pub fn new(probe: F, threshold: u64) -> Self {
        FreeCapacitySense { probe, threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl<F: FnMut() -> u64> CarrierSense for FreeCapacitySense<F> {
    fn sense(&mut self) -> CarrierDecision {
        if (self.probe)() >= self.threshold {
            CarrierDecision::Clear
        } else {
            CarrierDecision::Defer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_selection() {
        assert_eq!(Discipline::Fixed.backoff(), BackoffPolicy::None);
        assert_eq!(Discipline::Aloha.backoff(), BackoffPolicy::ethernet());
        assert_eq!(Discipline::Ethernet.backoff(), BackoffPolicy::ethernet());
    }

    #[test]
    fn only_ethernet_senses() {
        assert!(!Discipline::Fixed.uses_carrier_sense());
        assert!(!Discipline::Aloha.uses_carrier_sense());
        assert!(Discipline::Ethernet.uses_carrier_sense());
    }

    #[test]
    fn parse_and_display() {
        for d in Discipline::ALL {
            let round: Discipline = d.label().parse().unwrap();
            assert_eq!(round, d);
            assert_eq!(d.to_string(), d.label());
        }
        assert!("csma".parse::<Discipline>().is_err());
    }

    #[test]
    fn free_capacity_sense_thresholds() {
        let mut level = 1500u64;
        {
            let mut s = FreeCapacitySense::new(|| level, 1000);
            assert_eq!(s.sense(), CarrierDecision::Clear);
        }
        level = 999;
        {
            let mut s = FreeCapacitySense::new(|| level, 1000);
            assert_eq!(s.sense(), CarrierDecision::Defer);
        }
        level = 1000;
        {
            let mut s = FreeCapacitySense::new(|| level, 1000);
            assert_eq!(s.sense(), CarrierDecision::Clear, "threshold is inclusive");
        }
    }

    #[test]
    fn budget_for_combines() {
        let b = Discipline::Fixed.budget_for(Dur::from_mins(5));
        assert_eq!(b.time_limit, Some(Dur::from_mins(5)));
        assert_eq!(b.backoff, BackoffPolicy::None);
        let b = Discipline::Aloha.budget_for(Dur::from_mins(5));
        assert_eq!(b.backoff, BackoffPolicy::ethernet());
    }
}
