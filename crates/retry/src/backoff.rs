//! Exponential backoff with randomized spreading.
//!
//! Section 4 of the paper fixes the defaults: *"The base delay is one
//! second, doubled after every failure, up to a maximum of one hour.
//! Each delay interval is multiplied by a random factor between one and
//! two in order to distribute the expected values."* Those defaults are
//! [`BackoffPolicy::ethernet`]; everything is tunable because §8 frames
//! the limits as "the user's limit of tolerance for failures".

use crate::time::Dur;
use rand::{Rng, RngExt};

/// How long to wait between failed attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackoffPolicy {
    /// No delay at all — the "fixed" client of §5 that aggressively
    /// repeats its work "without delay and without regard to any sort
    /// of failure".
    None,
    /// A constant delay between attempts (`try ... every 10 seconds`).
    Constant(Dur),
    /// Exponential backoff: `base * growth^k`, capped, then multiplied
    /// by a random factor drawn uniformly from `[jitter_lo, jitter_hi)`.
    Exponential {
        /// First delay, before growth (paper: 1 s).
        base: Dur,
        /// Multiplier applied per consecutive failure (paper: 2.0).
        growth: f64,
        /// Upper bound on the un-jittered delay (paper: 1 h).
        cap: Dur,
        /// Lower edge of the random spreading factor (paper: 1.0).
        jitter_lo: f64,
        /// Upper edge of the random spreading factor (paper: 2.0).
        jitter_hi: f64,
    },
}

impl BackoffPolicy {
    /// The paper's defaults: 1 s base, doubling, 1 h cap, jitter [1, 2).
    ///
    /// ```
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use retry::{BackoffPolicy, Dur};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let p = BackoffPolicy::ethernet();
    /// let d = p.delay_after(3, &mut rng); // third consecutive failure
    /// assert!(d >= Dur::from_secs(4) && d < Dur::from_secs(8));
    /// ```
    pub fn ethernet() -> BackoffPolicy {
        BackoffPolicy::Exponential {
            base: Dur::from_secs(1),
            growth: 2.0,
            cap: Dur::from_hours(1),
            jitter_lo: 1.0,
            jitter_hi: 2.0,
        }
    }

    /// Exponential with a custom base and cap, keeping the paper's
    /// doubling growth and [1, 2) jitter.
    pub fn exponential(base: Dur, cap: Dur) -> BackoffPolicy {
        BackoffPolicy::Exponential {
            base,
            growth: 2.0,
            cap,
            jitter_lo: 1.0,
            jitter_hi: 2.0,
        }
    }

    /// Remove the randomized spreading (useful for deterministic tests
    /// and for the ablation bench that shows why jitter matters).
    pub fn without_jitter(self) -> BackoffPolicy {
        match self {
            BackoffPolicy::Exponential {
                base, growth, cap, ..
            } => BackoffPolicy::Exponential {
                base,
                growth,
                cap,
                jitter_lo: 1.0,
                jitter_hi: 1.0,
            },
            other => other,
        }
    }

    /// The delay after the `failures`-th consecutive failure
    /// (1-indexed: the first failure yields the base delay).
    /// `failures == 0` yields zero delay.
    pub fn delay_after<R: Rng + ?Sized>(&self, failures: u32, rng: &mut R) -> Dur {
        if failures == 0 {
            return Dur::ZERO;
        }
        match *self {
            BackoffPolicy::None => Dur::ZERO,
            BackoffPolicy::Constant(d) => d,
            BackoffPolicy::Exponential {
                base,
                growth,
                cap,
                jitter_lo,
                jitter_hi,
            } => {
                let exponent = (failures - 1).min(63);
                let grown = base.mul_f64(growth.powi(exponent as i32));
                let capped = grown.min(cap);
                let factor = if jitter_hi > jitter_lo {
                    rng.random_range(jitter_lo..jitter_hi)
                } else {
                    jitter_lo
                };
                capped.mul_f64(factor)
            }
        }
    }
}

/// Mutable backoff progress for one unit of work: counts consecutive
/// failures and produces the next delay. Reset on success.
#[derive(Clone, Debug)]
pub struct BackoffState {
    policy: BackoffPolicy,
    failures: u32,
}

impl BackoffState {
    /// Fresh state with no recorded failures.
    pub fn new(policy: BackoffPolicy) -> BackoffState {
        BackoffState {
            policy,
            failures: 0,
        }
    }

    /// The policy this state advances under.
    pub fn policy(&self) -> &BackoffPolicy {
        &self.policy
    }

    /// Consecutive failures recorded since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Record a failure and return the delay to wait before retrying.
    pub fn on_failure<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Dur {
        self.failures = self.failures.saturating_add(1);
        self.policy.delay_after(self.failures, rng)
    }

    /// Record a success: the failure streak resets so the next failure
    /// starts again from the base delay.
    pub fn on_success(&mut self) {
        self.failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn none_policy_never_delays() {
        let mut r = rng();
        for k in 0..10 {
            assert_eq!(BackoffPolicy::None.delay_after(k, &mut r), Dur::ZERO);
        }
    }

    #[test]
    fn constant_policy_is_constant() {
        let mut r = rng();
        let p = BackoffPolicy::Constant(Dur::from_secs(7));
        assert_eq!(p.delay_after(0, &mut r), Dur::ZERO);
        for k in 1..10 {
            assert_eq!(p.delay_after(k, &mut r), Dur::from_secs(7));
        }
    }

    #[test]
    fn exponential_doubles_without_jitter() {
        let mut r = rng();
        let p = BackoffPolicy::ethernet().without_jitter();
        assert_eq!(p.delay_after(1, &mut r), Dur::from_secs(1));
        assert_eq!(p.delay_after(2, &mut r), Dur::from_secs(2));
        assert_eq!(p.delay_after(3, &mut r), Dur::from_secs(4));
        assert_eq!(p.delay_after(11, &mut r), Dur::from_secs(1024));
    }

    #[test]
    fn exponential_caps_at_one_hour() {
        let mut r = rng();
        let p = BackoffPolicy::ethernet().without_jitter();
        // 2^12 = 4096 > 3600, so the 13th failure is capped.
        assert_eq!(p.delay_after(13, &mut r), Dur::from_hours(1));
        assert_eq!(p.delay_after(40, &mut r), Dur::from_hours(1));
        // Very large failure counts must not overflow.
        assert_eq!(p.delay_after(u32::MAX, &mut r), Dur::from_hours(1));
    }

    #[test]
    fn jitter_is_within_one_to_two() {
        let mut r = rng();
        let p = BackoffPolicy::ethernet();
        for k in 1..=20 {
            let unjittered = BackoffPolicy::ethernet()
                .without_jitter()
                .delay_after(k, &mut r);
            for _ in 0..50 {
                let d = p.delay_after(k, &mut r);
                assert!(d >= unjittered, "jittered {d} below base {unjittered}");
                assert!(
                    d < unjittered.saturating_double() + Dur::from_micros(2),
                    "jittered {d} above 2x base {unjittered}"
                );
            }
        }
    }

    #[test]
    fn state_counts_and_resets() {
        let mut r = rng();
        let mut st = BackoffState::new(BackoffPolicy::ethernet().without_jitter());
        assert_eq!(st.failures(), 0);
        assert_eq!(st.on_failure(&mut r), Dur::from_secs(1));
        assert_eq!(st.on_failure(&mut r), Dur::from_secs(2));
        assert_eq!(st.failures(), 2);
        st.on_success();
        assert_eq!(st.failures(), 0);
        assert_eq!(st.on_failure(&mut r), Dur::from_secs(1));
    }

    #[test]
    fn zero_failures_means_no_delay() {
        let mut r = rng();
        assert_eq!(BackoffPolicy::ethernet().delay_after(0, &mut r), Dur::ZERO);
    }
}
