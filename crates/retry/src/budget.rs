//! Try budgets: the user's expressed limit of tolerance for failure.
//!
//! A `try` in ftsh may be bounded by wall time (`try for 1 hour`), by a
//! number of attempts (`try 5 times`), or by both, whichever expires
//! first (`try for 1 hour or 3 times`). [`TryBudget`] is the static
//! description and [`TrySession`] tracks one live `try` block: attempts
//! made, the consecutive-failure backoff streak, and the absolute
//! deadline.

use crate::backoff::{BackoffPolicy, BackoffState};
use crate::time::{Dur, Time};
use rand::Rng;

/// Static limits for a `try` construct.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TryBudget {
    /// Total time allowed across all attempts and backoff delays.
    pub time_limit: Option<Dur>,
    /// Maximum number of attempts started.
    pub attempt_limit: Option<u32>,
    /// Delay policy between failed attempts.
    pub backoff: BackoffPolicy,
}

impl TryBudget {
    /// `try for <d>` with the paper's default backoff.
    pub fn for_time(d: Dur) -> TryBudget {
        TryBudget {
            time_limit: Some(d),
            attempt_limit: None,
            backoff: BackoffPolicy::ethernet(),
        }
    }

    /// `try <n> times` with the paper's default backoff.
    pub fn times(n: u32) -> TryBudget {
        TryBudget {
            time_limit: None,
            attempt_limit: Some(n),
            backoff: BackoffPolicy::ethernet(),
        }
    }

    /// `try for <d> or <n> times` — whichever expires first.
    pub fn for_time_or_times(d: Dur, n: u32) -> TryBudget {
        TryBudget {
            time_limit: Some(d),
            attempt_limit: Some(n),
            backoff: BackoffPolicy::ethernet(),
        }
    }

    /// Unlimited attempts and time (the bare `try ... end` loop); only
    /// sensible nested under an outer bounded try.
    pub fn unbounded() -> TryBudget {
        TryBudget {
            time_limit: None,
            attempt_limit: None,
            backoff: BackoffPolicy::ethernet(),
        }
    }

    /// Replace the backoff policy.
    pub fn with_backoff(mut self, p: BackoffPolicy) -> TryBudget {
        self.backoff = p;
        self
    }
}

/// What a failed attempt leads to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextAttempt {
    /// Sleep until the given instant, then attempt again.
    RetryAt(Time),
    /// The budget is spent: the `try` as a whole fails.
    Exhausted,
}

/// One live execution of a `try` block.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use retry::{Dur, NextAttempt, Time, TryBudget, TrySession};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut s = TrySession::start(TryBudget::times(2), Time::ZERO);
/// assert!(s.begin_attempt(Time::ZERO));
/// // First failure: backoff, retry allowed.
/// assert!(matches!(s.on_failure(Time::ZERO, &mut rng), NextAttempt::RetryAt(_)));
/// assert!(s.begin_attempt(Time::from_secs(2)));
/// // Second failure exhausts the two-attempt budget.
/// assert_eq!(s.on_failure(Time::from_secs(2), &mut rng), NextAttempt::Exhausted);
/// ```
#[derive(Clone, Debug)]
pub struct TrySession {
    budget: TryBudget,
    backoff: BackoffState,
    started: Time,
    attempts: u32,
}

impl TrySession {
    /// Open a session at instant `now`. The deadline, if any, is fixed
    /// from this moment.
    pub fn start(budget: TryBudget, now: Time) -> TrySession {
        TrySession {
            backoff: BackoffState::new(budget.backoff),
            budget,
            started: now,
            attempts: 0,
        }
    }

    /// The absolute deadline of this session, if time-limited.
    pub fn deadline(&self) -> Option<Time> {
        self.budget
            .time_limit
            .map(|d| self.started.saturating_add(d))
    }

    /// Instant the session was opened.
    pub fn started(&self) -> Time {
        self.started
    }

    /// Attempts started so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The budget this session runs under.
    pub fn budget(&self) -> &TryBudget {
        &self.budget
    }

    /// True if the deadline has passed at `now`.
    pub fn expired(&self, now: Time) -> bool {
        match self.deadline() {
            Some(d) => now >= d,
            None => false,
        }
    }

    /// May another attempt begin at `now`? Checks both limits. Callers
    /// must invoke this before each attempt; when it returns `true` the
    /// attempt is counted as started.
    pub fn begin_attempt(&mut self, now: Time) -> bool {
        if self.expired(now) {
            return false;
        }
        if let Some(n) = self.budget.attempt_limit {
            if self.attempts >= n {
                return false;
            }
        }
        self.attempts += 1;
        true
    }

    /// Record that the current attempt failed at `now` and decide what
    /// happens next. A retry whose wake-up instant would land on or
    /// past the deadline is pointless (it would be killed immediately),
    /// so it is reported as [`NextAttempt::Exhausted`].
    pub fn on_failure<R: Rng + ?Sized>(&mut self, now: Time, rng: &mut R) -> NextAttempt {
        if let Some(n) = self.budget.attempt_limit {
            if self.attempts >= n {
                return NextAttempt::Exhausted;
            }
        }
        let delay = self.backoff.on_failure(rng);
        let wake = now.saturating_add(delay);
        match self.deadline() {
            Some(d) if wake >= d => NextAttempt::Exhausted,
            _ => NextAttempt::RetryAt(wake),
        }
    }

    /// Record that the current attempt succeeded (resets the backoff
    /// streak; relevant when a session is reused as a work loop).
    pub fn on_success(&mut self) {
        self.backoff.on_success();
    }

    /// Consecutive failures since the last success.
    pub fn failure_streak(&self) -> u32 {
        self.backoff.failures()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn nojitter(b: TryBudget) -> TryBudget {
        let p = b.backoff.without_jitter();
        b.with_backoff(p)
    }

    #[test]
    fn attempt_limit_enforced() {
        let mut r = rng();
        let mut s = TrySession::start(nojitter(TryBudget::times(3)), Time::ZERO);
        let mut now = Time::ZERO;
        for i in 0..3 {
            assert!(s.begin_attempt(now), "attempt {i} should be allowed");
            match s.on_failure(now, &mut r) {
                NextAttempt::RetryAt(t) => now = t,
                NextAttempt::Exhausted => {
                    assert_eq!(i, 2, "exhausted only after the 3rd failure");
                    return;
                }
            }
        }
        assert!(!s.begin_attempt(now));
    }

    #[test]
    fn deadline_is_absolute() {
        let b = nojitter(TryBudget::for_time(Dur::from_mins(5)));
        let s = TrySession::start(b, Time::from_secs(100));
        assert_eq!(s.deadline(), Some(Time::from_secs(400)));
        assert!(!s.expired(Time::from_secs(399)));
        assert!(s.expired(Time::from_secs(400)));
    }

    #[test]
    fn no_attempt_after_deadline() {
        let b = nojitter(TryBudget::for_time(Dur::from_secs(10)));
        let mut s = TrySession::start(b, Time::ZERO);
        assert!(s.begin_attempt(Time::from_secs(9)));
        assert!(!s.begin_attempt(Time::from_secs(10)));
        assert!(!s.begin_attempt(Time::from_secs(11)));
    }

    #[test]
    fn retry_past_deadline_is_exhausted() {
        let mut r = rng();
        // 3 s budget, 2 s constant backoff: first failure at t=2 would
        // wake at t=4 >= deadline t=3 -> exhausted.
        let b = TryBudget::for_time(Dur::from_secs(3))
            .with_backoff(BackoffPolicy::Constant(Dur::from_secs(2)));
        let mut s = TrySession::start(b, Time::ZERO);
        assert!(s.begin_attempt(Time::ZERO));
        assert_eq!(
            s.on_failure(Time::from_secs(2), &mut r),
            NextAttempt::Exhausted
        );
    }

    #[test]
    fn retry_within_deadline_waits_backoff() {
        let mut r = rng();
        let b = nojitter(TryBudget::for_time(Dur::from_mins(10)));
        let mut s = TrySession::start(b, Time::ZERO);
        assert!(s.begin_attempt(Time::ZERO));
        // First failure: 1 s backoff.
        assert_eq!(
            s.on_failure(Time::from_secs(1), &mut r),
            NextAttempt::RetryAt(Time::from_secs(2))
        );
        assert!(s.begin_attempt(Time::from_secs(2)));
        // Second consecutive failure: 2 s backoff.
        assert_eq!(
            s.on_failure(Time::from_secs(3), &mut r),
            NextAttempt::RetryAt(Time::from_secs(5))
        );
    }

    #[test]
    fn success_resets_streak() {
        let mut r = rng();
        let mut s = TrySession::start(nojitter(TryBudget::unbounded()), Time::ZERO);
        assert!(s.begin_attempt(Time::ZERO));
        s.on_failure(Time::ZERO, &mut r);
        s.on_failure(Time::ZERO, &mut r);
        assert_eq!(s.failure_streak(), 2);
        s.on_success();
        assert_eq!(s.failure_streak(), 0);
    }

    #[test]
    fn both_limits_whichever_first() {
        let mut r = rng();
        // Generous time, tight attempts.
        let b = nojitter(TryBudget::for_time_or_times(Dur::from_hours(1), 2));
        let mut s = TrySession::start(b, Time::ZERO);
        assert!(s.begin_attempt(Time::ZERO));
        assert!(matches!(
            s.on_failure(Time::ZERO, &mut r),
            NextAttempt::RetryAt(_)
        ));
        assert!(s.begin_attempt(Time::from_secs(1)));
        assert_eq!(
            s.on_failure(Time::from_secs(1), &mut r),
            NextAttempt::Exhausted
        );
    }

    #[test]
    fn unbounded_never_exhausts() {
        let mut r = rng();
        let mut s = TrySession::start(nojitter(TryBudget::unbounded()), Time::ZERO);
        let mut now = Time::ZERO;
        for _ in 0..100 {
            assert!(s.begin_attempt(now));
            match s.on_failure(now, &mut r) {
                NextAttempt::RetryAt(t) => now = t,
                NextAttempt::Exhausted => panic!("unbounded session exhausted"),
            }
        }
        assert_eq!(s.attempts(), 100);
    }
}
