//! Virtual time: instants and durations with microsecond resolution.
//!
//! The paper's constructs (`try for 30 minutes`) are about *budgets of
//! time*, not about any particular clock. [`Time`] is an opaque instant
//! on whatever clock the driver supplies — wall-clock for real process
//! execution, the event-queue clock for simulation — and [`Dur`] is a
//! span between instants. Both are plain `u64` microsecond counts, which
//! keeps them `Copy`, totally ordered, and free of platform quirks.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, measured in microseconds from an
/// arbitrary epoch (simulation start, or process start in real mode).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The epoch: time zero.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as "no deadline".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Time {
        Time(us)
    }

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, saturating at zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (saturates at [`Time::MAX`]).
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// The zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// The greatest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Dur {
        Dur(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Dur {
        Dur(h * 3_600_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Dur {
        Dur(d * 86_400_000_000)
    }

    /// Construct from fractional seconds, saturating; negative inputs
    /// clamp to zero.
    pub fn from_secs_f64(s: f64) -> Dur {
        if s <= 0.0 {
            Dur(0)
        } else {
            let us = s * 1e6;
            if us >= u64::MAX as f64 {
                Dur(u64::MAX)
            } else {
                Dur(us as u64)
            }
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, saturating. Used for the
    /// random backoff factor in `[1, 2)`.
    pub fn mul_f64(self, k: f64) -> Dur {
        debug_assert!(k >= 0.0, "negative duration scale");
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            Dur(u64::MAX)
        } else {
            Dur(v as u64)
        }
    }

    /// Saturating doubling — the backoff growth step.
    pub fn saturating_double(self) -> Dur {
        Dur(self.0.saturating_mul(2))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Convert to a `std::time::Duration` for real-mode sleeping.
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }

    /// Convert from a `std::time::Duration`, saturating.
    pub fn from_std(d: std::time::Duration) -> Dur {
        let us = d.as_micros();
        if us > u64::MAX as u128 {
            Dur(u64::MAX)
        } else {
            Dur(us as u64)
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self >= rhs, "time went backwards");
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == u64::MAX {
            write!(f, "forever")
        } else if us.is_multiple_of(3_600_000_000) && us > 0 {
            write!(f, "{}h", us / 3_600_000_000)
        } else if us.is_multiple_of(60_000_000) && us > 0 {
            write!(f, "{}m", us / 60_000_000)
        } else if us.is_multiple_of(1_000_000) {
            write!(f, "{}s", us / 1_000_000)
        } else if us.is_multiple_of(1_000) {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{}us", us)
        }
    }
}

/// Parse a human duration in the syntax ftsh accepts: a number followed
/// by a unit word, e.g. `30 minutes`, `1 hour`, `90 seconds`, `2 days`.
/// Unit words may be singular, plural, or abbreviated
/// (`s/sec/secs/second/seconds`, `m/min/.../minutes`, `h/hr/.../hours`,
/// `d/day/days`, `ms/msec/millisecond(s)`).
pub fn parse_duration(amount: u64, unit: &str) -> Option<Dur> {
    let unit = unit.to_ascii_lowercase();
    let d = match unit.as_str() {
        "us" | "usec" | "usecs" | "microsecond" | "microseconds" => Dur::from_micros(amount),
        "ms" | "msec" | "msecs" | "millisecond" | "milliseconds" => Dur::from_millis(amount),
        "s" | "sec" | "secs" | "second" | "seconds" => Dur::from_secs(amount),
        "m" | "min" | "mins" | "minute" | "minutes" => Dur::from_mins(amount),
        "h" | "hr" | "hrs" | "hour" | "hours" => Dur::from_hours(amount),
        "d" | "day" | "days" => Dur::from_days(amount),
        _ => return None,
    };
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Dur::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Dur::from_mins(2).as_secs(), 120);
        assert_eq!(Dur::from_hours(1).as_secs(), 3600);
        assert_eq!(Dur::from_days(1).as_secs(), 86400);
        assert_eq!(Dur::from_millis(1500).as_millis(), 1500);
        assert_eq!(Time::from_secs(5).as_micros(), 5_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(10);
        let d = Dur::from_secs(3);
        assert_eq!(t + d, Time::from_secs(13));
        assert_eq!(Time::from_secs(13) - t, d);
        assert_eq!(d + d, Dur::from_secs(6));
        assert_eq!(d * 4, Dur::from_secs(12));
        assert_eq!(Dur::from_secs(12) / 4, Dur::from_secs(3));
        assert_eq!(Dur::from_secs(5) - Dur::from_secs(7), Dur::ZERO);
    }

    #[test]
    fn saturation() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
        assert_eq!(Dur::MAX.saturating_double(), Dur::MAX);
        assert_eq!(Dur::MAX + Dur::from_secs(1), Dur::MAX);
        assert_eq!(Dur::MAX.mul_f64(3.0), Dur::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = Dur::from_secs(2);
        assert_eq!(d.mul_f64(1.5), Dur::from_millis(3000));
        assert_eq!(d.mul_f64(0.0), Dur::ZERO);
    }

    #[test]
    fn from_secs_f64_edges() {
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(0.5), Dur::from_millis(500));
        assert_eq!(Dur::from_secs_f64(f64::MAX), Dur::MAX);
    }

    #[test]
    fn saturating_since() {
        let a = Time::from_secs(5);
        let b = Time::from_secs(9);
        assert_eq!(b.saturating_since(a), Dur::from_secs(4));
        assert_eq!(a.saturating_since(b), Dur::ZERO);
    }

    #[test]
    fn parse_units() {
        assert_eq!(parse_duration(30, "minutes"), Some(Dur::from_mins(30)));
        assert_eq!(parse_duration(1, "hour"), Some(Dur::from_hours(1)));
        assert_eq!(parse_duration(5, "s"), Some(Dur::from_secs(5)));
        assert_eq!(parse_duration(2, "DAYS"), Some(Dur::from_days(2)));
        assert_eq!(parse_duration(100, "ms"), Some(Dur::from_millis(100)));
        assert_eq!(parse_duration(1, "fortnight"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dur::from_hours(1).to_string(), "1h");
        assert_eq!(Dur::from_mins(5).to_string(), "5m");
        assert_eq!(Dur::from_secs(42).to_string(), "42s");
        assert_eq!(Dur::from_millis(250).to_string(), "250ms");
        assert_eq!(Dur::from_micros(7).to_string(), "7us");
        assert_eq!(Dur::MAX.to_string(), "forever");
    }

    #[test]
    fn std_roundtrip() {
        let d = Dur::from_millis(1234);
        assert_eq!(Dur::from_std(d.to_std()), d);
    }

    #[test]
    fn min_max() {
        let a = Dur::from_secs(1);
        let b = Dur::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
