//! # `retry` — the retry kernel of the Ethernet approach
//!
//! This crate is the pure, time-agnostic heart of the reproduction of
//! *"The Ethernet Approach to Grid Computing"* (Thain & Livny, HPDC 2003).
//! It captures the obligations the paper places on well-behaved clients of
//! a contended resource:
//!
//! * **Exponential backoff** — after each failure a client delays before
//!   retrying, doubling the delay, capped, and multiplied by a random
//!   factor in `[1, 2)` so that competing clients spread out in time
//!   ([`BackoffPolicy`]).
//! * **Bounded tolerance** — the user expresses *their* limit of
//!   tolerance for failure as a deadline, an attempt count, or both
//!   ([`TryBudget`], [`TrySession`]).
//! * **Carrier sense** — before consuming a resource an Ethernet client
//!   measures whether there is capacity, and defers if not
//!   ([`CarrierSense`], [`Discipline`]).
//!
//! Everything here is independent of wall-clock time: callers supply
//! "now" as a [`Time`] value, which lets the very same code drive both
//! real process execution (`procman`) and the discrete-event simulator
//! (`simgrid`). That property is what makes the claim "the simulated
//! clients run the same retry code as the real shell" true.

#![warn(missing_docs)]

pub mod backoff;
pub mod budget;
pub mod discipline;
pub mod time;

pub use backoff::{BackoffPolicy, BackoffState};
pub use budget::{NextAttempt, TryBudget, TrySession};
pub use discipline::{CarrierDecision, CarrierSense, Discipline, FreeCapacitySense};
pub use time::{parse_duration, Dur, Time};
