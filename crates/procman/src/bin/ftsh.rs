//! The `ftsh` command-line interpreter.
//!
//! ```text
//! ftsh SCRIPT.ftsh        run a script file
//! ftsh -c 'try ... end'   run an inline script
//! ftsh --check SCRIPT     parse only, report errors
//! ftsh --lint SCRIPT      parse and statically analyze (ftshlint)
//! ftsh --pretty SCRIPT    parse and print the canonical form
//! ftsh --log SCRIPT       run and dump the execution log afterwards
//! ftsh --timeline SCRIPT  run and render per-task swimlanes
//! ftsh --trace OUT.jsonl  run and stream a structured trace (JSONL)
//! ftsh --repl             interactive session (variables persist)
//! ```
//!
//! Lint options (with `--lint`):
//!
//! ```text
//! --max-budget DUR        reject scripts whose worst-case retry
//!                         envelope exceeds DUR ('90s', '2 hours')
//! --define NAME           pre-bind a variable for the dataflow rules
//! ```
//!
//! Backoff tuning (the paper's defaults are 1 s base, 1 h cap, with a
//! random factor in [1, 2)):
//!
//! ```text
//! --backoff-base MILLIS   first delay after a failure
//! --backoff-cap SECONDS   upper bound on the delay
//! --no-jitter             disable the random spreading factor
//! --seed N                fix the jitter RNG (reproducible runs)
//! ```
//!
//! Exit status: **0** if the script succeeded (or `--check`/`--lint`
//! found nothing), **1** if the script ran and failed, **2** on usage
//! errors, parse errors, or lint findings — so callers can tell "the
//! work failed" (retryable) from "the script is malformed" (not).

use ftsh::{parse, pretty, LogKind, Vm};
use procman::{run_vm_traced, RealOptions};

use retry::{BackoffPolicy, Dur};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ftsh [--check|--lint|--pretty|--log] SCRIPT\n       ftsh -c 'script text'");
    ExitCode::from(2)
}

/// Parse `'90s'`, `'10 m'`, `'2 hours'`: digits, then a unit word.
fn parse_dur_arg(s: &str) -> Option<Dur> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit())?;
    let amount: u64 = s[..split].parse().ok()?;
    retry::parse_duration(amount, s[split..].trim())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut do_lint = false;
    let mut lint_opts = ftshlint::Options::default();
    let mut show_pretty = false;
    let mut show_log = false;
    let mut show_timeline = false;
    let mut inline: Option<String> = None;
    let mut path: Option<String> = None;
    let mut backoff_base: Option<u64> = None;
    let mut backoff_cap: Option<u64> = None;
    let mut jitter = true;
    let mut seed: Option<u64> = None;
    let mut trace_path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--lint" => do_lint = true,
            "--max-budget" => match it.next().as_deref().and_then(parse_dur_arg) {
                Some(d) => lint_opts.max_budget = Some(d),
                None => return usage(),
            },
            "--define" => match it.next() {
                Some(name) => lint_opts.defines.push(name),
                None => return usage(),
            },
            "--pretty" => show_pretty = true,
            "--log" => show_log = true,
            "--timeline" => show_timeline = true,
            "-c" => match it.next() {
                Some(s) => inline = Some(s),
                None => return usage(),
            },
            "--backoff-base" => match it.next().and_then(|s| s.parse().ok()) {
                Some(ms) => backoff_base = Some(ms),
                None => return usage(),
            },
            "--backoff-cap" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) => backoff_cap = Some(secs),
                None => return usage(),
            },
            "--no-jitter" => jitter = false,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p),
                None => return usage(),
            },
            "--repl" | "-i" => {
                let mut repl = procman::Repl::new(RealOptions::default(), true);
                let stdin = std::io::stdin();
                let status = repl.run(stdin.lock(), std::io::stdout());
                return ExitCode::from(status.clamp(0, 2) as u8);
            }
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = Some(n),
                None => return usage(),
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => {
                if path.is_some() {
                    return usage();
                }
                path = Some(other.to_string());
            }
        }
    }

    let source = match (inline, &path) {
        (Some(s), None) => s,
        (None, Some(p)) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ftsh: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => return usage(),
    };

    let script = match parse(&source) {
        Ok(s) => s,
        Err(e) => {
            // Line:col plus a caret excerpt pointing at the offender.
            eprintln!("ftsh: {}", e.render(&source));
            return ExitCode::from(2);
        }
    };

    if show_pretty {
        print!("{}", pretty(&script));
        return ExitCode::SUCCESS;
    }
    if do_lint {
        let file = path.as_deref().unwrap_or("<inline>");
        let report = ftshlint::lint_script(&script, &source, &lint_opts);
        for d in &report.diagnostics {
            eprintln!("{}\n", d.render(file, &source));
        }
        eprintln!(
            "ftsh: lint: {} finding(s), {} suppressed; discipline {}, worst-case envelope {}",
            report.diagnostics.len(),
            report.suppressed,
            report.discipline,
            report.envelope,
        );
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    if check {
        return ExitCode::SUCCESS;
    }

    // §4: nested shells relay termination — trap the parent's SIGTERM
    // and take our own sessions down with us.
    procman::install_sigterm_hook();
    let opts = RealOptions {
        handle_sigterm: true,
        ..RealOptions::default()
    };
    let mut vm = match seed {
        Some(n) => Vm::with_seed(&script, n),
        // No --seed: entropy keeps concurrent shells' jitter
        // decorrelated (§4); pass --seed for reproducible runs.
        None => Vm::new(&script),
    };
    if backoff_base.is_some() || backoff_cap.is_some() || !jitter {
        let mut policy = BackoffPolicy::exponential(
            Dur::from_millis(backoff_base.unwrap_or(1000)),
            Dur::from_secs(backoff_cap.unwrap_or(3600)),
        );
        if !jitter {
            policy = policy.without_jitter();
        }
        vm.set_default_backoff(policy);
    }
    let trace_sink = match &trace_path {
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => {
                let w = std::io::BufWriter::new(f);
                Some(ftsh::trace::shared(ftsh::trace::JsonlSink::new(w)))
            }
            Err(e) => {
                eprintln!("ftsh: cannot create trace file {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let report = run_vm_traced(vm, &opts, trace_sink);

    if show_timeline {
        eprint!("{}", report.log.render_timeline());
    }
    if show_log {
        for e in report.log.events() {
            let what = match &e.kind {
                LogKind::CmdStart { argv } => format!("start {}", argv.join(" ")),
                LogKind::CmdEnd { program, success } => {
                    format!("end {program} ({})", if *success { "ok" } else { "failed" })
                }
                LogKind::CmdCancelled { program } => format!("killed {program}"),
                LogKind::TryAttempt { attempt } => format!("attempt #{attempt}"),
                LogKind::Backoff { delay } => format!("backoff {delay}"),
                LogKind::TryExhausted => "try exhausted".into(),
                LogKind::TryTimeout => "try deadline expired".into(),
                LogKind::CatchEntered => "catch".into(),
                LogKind::ForAnyNext { value } => format!("forany -> {value}"),
                LogKind::ForAllSpawn { branches } => format!("forall x{branches}"),
                LogKind::VarSet { name } => format!("set {name}"),
                LogKind::ScriptDone { success } => {
                    format!("done ({})", if *success { "ok" } else { "failed" })
                }
            };
            eprintln!("[{:>10.3}] task {} {}", e.time.as_secs_f64(), e.task, what);
        }
        let s = report.log.summary();
        eprintln!(
            "-- {} commands, {} attempts, {} backoffs ({} total), {} timeouts",
            s.commands_started, s.attempts, s.backoffs, s.total_backoff, s.timed_out_tries
        );
        for (prog, outcome) in &report.process_outcomes {
            eprintln!("-- {prog}: {outcome:?}");
        }
    }

    if report.success {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
