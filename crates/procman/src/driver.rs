//! The real-process driver: runs an ftsh [`Vm`] against actual POSIX
//! processes on the wall clock.
//!
//! Each command started by the VM is spawned in its own session
//! ([`SessionChild`]) and watched by a monitor thread that reports the
//! exit status over a channel. The driver waits for whichever comes
//! first — a completion or the VM's next wake-up (backoff expiry or
//! `try` deadline) — and on cancellation escalates SIGTERM → SIGKILL
//! against the whole session, so even process trees die with their
//! deadline.

use crate::session::{ProcessOutcome, SessionChild, SpawnError};
use ftsh::vm::{CmdResult, CmdToken, Effect, Tick, Vm, VmStatus};
use ftsh::{EventLog, Script};
use retry::Time;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Set by the SIGTERM hook; checked by drivers running with
/// [`RealOptions::handle_sigterm`].
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn sigterm_handler(_: i32) {
    // Only an atomic store: async-signal-safe.
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Install the cooperative SIGTERM hook (§4: a child ftsh traps the
/// warning SIGTERM from its parent "and then reacting by killing its
/// own children"). Drivers running with
/// [`RealOptions::handle_sigterm`] poll the flag and terminate every
/// session they own before exiting. Idempotent.
pub fn install_sigterm_hook() {
    // SAFETY: installing a handler that only stores an atomic.
    unsafe {
        libc::signal(libc::SIGTERM, sigterm_handler as *const () as usize);
    }
}

/// Whether a SIGTERM has been received since the hook was installed
/// (test hook; cleared by the driver when it acts on it).
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Options for real execution.
#[derive(Clone, Debug)]
pub struct RealOptions {
    /// Grace period between SIGTERM and SIGKILL on cancellation.
    pub kill_grace: Duration,
    /// RNG seed for backoff jitter (None: from entropy).
    pub seed: Option<u64>,
    /// Honour the cooperative SIGTERM flag set by
    /// [`install_sigterm_hook`]: when the parent asks this shell to
    /// exit, kill every owned session first (§4's nested-shell
    /// protocol). Waits are sliced so the flag is noticed promptly.
    pub handle_sigterm: bool,
}

impl Default for RealOptions {
    fn default() -> RealOptions {
        RealOptions {
            kill_grace: Duration::from_millis(500),
            seed: None,
            handle_sigterm: false,
        }
    }
}

/// Result of a real run.
#[derive(Debug)]
pub struct RealReport {
    /// Did the script as a whole succeed?
    pub success: bool,
    /// The VM's execution log (attempts, backoffs, kills…).
    pub log: EventLog,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// How each real process actually ended, in completion order —
    /// the exit-code/signal detail §2 laments is invisible at the
    /// shell interface, preserved here for post-mortem analysis.
    pub process_outcomes: Vec<(String, ProcessOutcome)>,
    /// The shell variables at the end of the run (the root task's
    /// environment) — what a REPL carries into the next statement.
    pub final_env: ftsh::Env,
}

/// Run a parsed script against real processes. Blocks until done.
///
/// ```
/// use ftsh::parse;
/// use procman::{run_script, RealOptions};
///
/// let script = parse("true\n").unwrap();
/// let report = run_script(&script, &RealOptions::default());
/// assert!(report.success);
/// ```
pub fn run_script(script: &Script, opts: &RealOptions) -> RealReport {
    let vm = match opts.seed {
        Some(s) => Vm::with_seed(script, s),
        // Deliberately entropy-seeded: concurrent real shells must not
        // share a jitter stream (§4). Simulation paths always seed.
        None => Vm::new(script),
    };
    run_vm(vm, opts)
}

/// [`run_vm`] with an optional structured-trace sink installed on the
/// VM (as client 0): attempt spans, backoffs, and command boundaries
/// are recorded live while the real processes run — the same schema
/// the simulator emits, so one post-mortem pipeline reads both.
pub fn run_vm_traced(
    mut vm: Vm,
    opts: &RealOptions,
    trace: Option<ftsh::trace::SharedSink>,
) -> RealReport {
    if let Some(sink) = trace {
        vm.set_tracer(sink, 0);
    }
    run_vm(vm, opts)
}

/// Run a prepared VM (e.g. with a preloaded environment) against real
/// processes.
pub fn run_vm(mut vm: Vm, opts: &RealOptions) -> RealReport {
    let start = Instant::now();
    let now = |start: Instant| {
        Time::from_micros(start.elapsed().as_micros().min(u64::MAX as u128) as u64)
    };
    let (tx, rx) = mpsc::channel::<(CmdToken, CmdResult, ProcessOutcome)>();
    let mut running: HashMap<CmdToken, i32> = HashMap::new();
    let mut programs: HashMap<CmdToken, String> = HashMap::new();
    let mut process_outcomes: Vec<(String, ProcessOutcome)> = Vec::new();

    let success = loop {
        if opts.handle_sigterm && TERM_REQUESTED.load(Ordering::SeqCst) {
            // The parent shell wants us gone: take our children with
            // us, as §4 prescribes.
            for (_, pid) in running.drain() {
                SessionChild::kill_escalate(pid, opts.kill_grace);
            }
            break false;
        }
        let Tick { effects, status } = vm.tick(now(start));
        for eff in effects {
            match eff {
                Effect::Start { token, spec, .. } => match SessionChild::spawn(&spec) {
                    Ok(child) => {
                        running.insert(token, child.pid());
                        programs.insert(token, spec.program().to_string());
                        let tx = tx.clone();
                        std::thread::spawn(move || {
                            let (outcome, out) = child.wait_detailed();
                            let _ = tx.send((
                                token,
                                CmdResult {
                                    success: outcome.success(),
                                    stdout: out.into(),
                                },
                                outcome,
                            ));
                        });
                    }
                    Err(SpawnError::Spawn(_) | SpawnError::Redirect(_)) => {
                        // "The program could not be loaded and run" is
                        // just another untyped failure.
                        vm.complete(token, CmdResult::fail());
                    }
                },
                Effect::Cancel { token } => {
                    if let Some(pid) = running.remove(&token) {
                        SessionChild::kill_escalate(pid, opts.kill_grace);
                        // The monitor thread will still send a result;
                        // the VM ignores stale tokens.
                    }
                }
            }
        }

        match status {
            VmStatus::Done { success } => break success,
            VmStatus::Running { next_wake } => {
                let wait = match next_wake {
                    Some(t) => {
                        let n = now(start);
                        if t <= n {
                            // A wake is already due; tick again without
                            // draining the channel.
                            continue;
                        }
                        Some((t - n).to_std())
                    }
                    None => None,
                };
                // Slice long waits so the SIGTERM flag is noticed
                // within ~200 ms even mid-sleep.
                let slice = Duration::from_millis(200);
                let wait = match (opts.handle_sigterm, wait) {
                    (true, Some(d)) => Some(d.min(slice)),
                    (true, None) if !running.is_empty() => Some(slice),
                    (_, w) => w,
                };
                let received = match wait {
                    Some(d) => rx.recv_timeout(d).ok(),
                    None => {
                        if running.is_empty() {
                            // Nothing running and nothing to wake:
                            // the only way out is completions already
                            // queued in the channel.
                            rx.try_recv().ok()
                        } else {
                            rx.recv().ok()
                        }
                    }
                };
                match received {
                    Some((token, result, outcome)) => {
                        if let Some(p) = programs.remove(&token) {
                            process_outcomes.push((p, outcome));
                        }
                        vm.complete(token, result);
                        running.remove(&token);
                        // Drain any further completions that raced in.
                        while let Ok((t, r, o)) = rx.try_recv() {
                            if let Some(p) = programs.remove(&t) {
                                process_outcomes.push((p, o));
                            }
                            vm.complete(t, r);
                            running.remove(&t);
                        }
                    }
                    None => {
                        if wait.is_none() && running.is_empty() {
                            // Deadlocked VM; cannot happen with a
                            // well-formed script, but never spin.
                            break false;
                        }
                    }
                }
            }
        }
    };

    // Processes killed by a deadline report their fate from monitor
    // threads shortly after SIGTERM/SIGKILL; collect those stragglers
    // so the post-mortem record is complete.
    let drain_deadline = Instant::now() + opts.kill_grace + Duration::from_secs(2);
    while !programs.is_empty() {
        let left = drain_deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match rx.recv_timeout(left) {
            Ok((t, _r, o)) => {
                if let Some(p) = programs.remove(&t) {
                    process_outcomes.push((p, o));
                }
            }
            Err(_) => break,
        }
    }

    RealReport {
        success,
        log: vm.log().clone(),
        elapsed: start.elapsed(),
        process_outcomes,
        final_env: vm.env().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::parse;

    fn run(src: &str) -> RealReport {
        let script = parse(src).unwrap();
        run_script(
            &script,
            &RealOptions {
                kill_grace: Duration::from_millis(100),
                seed: Some(42),
                ..RealOptions::default()
            },
        )
    }

    #[test]
    fn group_of_real_commands() {
        let r = run("true\ntrue\n");
        assert!(r.success);
        let r = run("true\nfalse\ntrue\n");
        assert!(!r.success);
    }

    #[test]
    fn capture_into_variable_feeds_condition() {
        let r = run("echo 2048 -> n\n\
             if ${n} .ge. 1000\n\
               true\n\
             else\n\
               failure\n\
             end\n");
        assert!(r.success);
    }

    #[test]
    fn final_env_carries_variables_out() {
        let r = run("echo 7 -> n\nx=${n}${n}\n");
        assert!(r.success);
        assert_eq!(r.final_env.get("x"), "77");
    }

    #[test]
    fn process_outcomes_record_exit_detail() {
        let r = run("sh -c \"exit 3\"\ntrue\n");
        assert!(!r.success);
        assert_eq!(
            r.process_outcomes,
            vec![("sh".to_string(), crate::ProcessOutcome::Exited(3))],
            "the failing exit code is preserved post mortem"
        );
    }

    #[test]
    fn killed_processes_report_their_signal() {
        let r = run("try for 1 seconds or 1 times\n sleep 30\nend\n");
        assert!(!r.success);
        let signal_deaths = r
            .process_outcomes
            .iter()
            .filter(|(p, o)| p == "sleep" && matches!(o, crate::ProcessOutcome::Signaled(_)))
            .count();
        assert_eq!(signal_deaths, 1, "outcomes: {:?}", r.process_outcomes);
    }

    #[test]
    fn try_deadline_kills_sleep() {
        let started = Instant::now();
        let r = run("try for 1 seconds or 1 times\n sleep 30\nend\n");
        assert!(!r.success);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "deadline must kill the sleep: {:?}",
            started.elapsed()
        );
        assert!(r.log.summary().timed_out_tries >= 1);
    }

    #[test]
    fn forany_falls_through_to_working_command() {
        let r = run("forany cmd in false false true\n\
               ${cmd}\n\
             end\n");
        assert!(r.success);
    }

    #[test]
    fn forall_runs_real_branches_in_parallel() {
        // Three 300 ms sleeps in parallel finish well under 900 ms.
        let started = Instant::now();
        let r = run("forall t in 0.3 0.3 0.3\n\
               sleep ${t}\n\
             end\n");
        assert!(r.success);
        assert!(
            started.elapsed() < Duration::from_millis(850),
            "parallel branches took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn forall_failure_aborts_siblings_quickly() {
        let started = Instant::now();
        let r = run("forall t in 30 0.1x 30\n\
               sleep ${t}\n\
             end\n");
        assert!(!r.success, "bad sleep operand fails the forall");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "siblings must be killed, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn missing_program_fails_cleanly() {
        let r = run("/definitely/not/a/program\n");
        assert!(!r.success);
    }

    #[test]
    fn traced_real_run_records_attempts_and_commands() {
        use ftsh::trace::{RingSink, TraceEv};
        use std::sync::{Arc, Mutex};

        let script = parse("try 2 times every 10 ms\n false\nend\n").unwrap();
        let ring = Arc::new(Mutex::new(RingSink::new(64)));
        let r = run_vm_traced(
            ftsh::Vm::with_seed(&script, 3),
            &RealOptions {
                seed: Some(3),
                ..RealOptions::default()
            },
            Some(ring.clone()),
        );
        assert!(!r.success);
        let recs: Vec<_> = ring.lock().unwrap().records().cloned().collect();
        assert!(recs.iter().all(|rec| rec.client == 0));
        let starts = recs
            .iter()
            .filter(|r| matches!(r.ev, TraceEv::AttemptStart { .. }))
            .count();
        assert_eq!(starts, 2, "both real attempts recorded");
        assert!(recs
            .iter()
            .any(|r| matches!(&r.ev, TraceEv::CmdStart { program } if program == "false")));
        assert!(recs
            .iter()
            .any(|r| matches!(r.ev, TraceEv::UnitDone { ok: false })));
    }

    #[test]
    fn retry_succeeds_with_marker_file() {
        // A command that fails until a marker exists, created by the
        // second attempt's sibling: classic retried-unit test.
        let dir = std::env::temp_dir().join(format!("ftsh-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let marker = dir.join("marker");
        let m = marker.to_str().unwrap();
        let src = format!(
            "try for 1 hour every 50 ms\n\
               sh -c \"test -f {m} || (touch {m}; exit 1)\"\n\
             end\n"
        );
        let r = run(&src);
        assert!(r.success);
        assert!(r.log.summary().attempts >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod function_tests {
    use super::*;
    use ftsh::parse;

    #[test]
    fn functions_run_against_real_commands() {
        let script = parse(
            "function check\n\
               sh -c \"test ${1} = ok\"\n\
             end\n\
             check ok\n",
        )
        .unwrap();
        let r = run_script(&script, &RealOptions::default());
        assert!(r.success);

        let script = parse(
            "function check\n\
               sh -c \"test ${1} = ok\"\n\
             end\n\
             check nope\n",
        )
        .unwrap();
        let r = run_script(&script, &RealOptions::default());
        assert!(!r.success);
    }
}

#[cfg(test)]
mod cp_cases {
    //! §2's taxonomy of `cp a b` failures, made distinguishable by the
    //! post-mortem record even though control flow stays untyped.

    use super::*;
    use crate::ProcessOutcome;
    use ftsh::parse;

    fn run_one(src: &str) -> RealReport {
        run_script(
            &parse(src).unwrap(),
            &RealOptions {
                seed: Some(1),
                ..RealOptions::default()
            },
        )
    }

    #[test]
    fn case1_copy_succeeds() {
        let dir = std::env::temp_dir().join(format!("ftsh-cp1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a"), "data").unwrap();
        let (a, b) = (dir.join("a"), dir.join("b"));
        let r = run_one(&format!("cp {} {}\n", a.display(), b.display()));
        assert!(r.success);
        assert_eq!(r.process_outcomes[0].1, ProcessOutcome::Exited(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn case2_source_missing_exits_nonzero() {
        let r = run_one("cp /no/such/source /tmp/ftsh-cp-dest\n");
        assert!(!r.success);
        // The paper's point: an ordinary nonzero exit, indistinguishable
        // *in band* from a transient failure…
        assert!(matches!(r.process_outcomes[0].1, ProcessOutcome::Exited(c) if c != 0));
    }

    #[test]
    fn case4_program_cannot_be_loaded() {
        let r = run_one("/no/such/cp a b\n");
        assert!(!r.success);
        // …while a failure to create the process never produces a
        // process at all: visible as an empty outcome list.
        assert!(r.process_outcomes.is_empty());
    }

    #[test]
    fn untyped_retry_handles_all_cases_the_same_way() {
        // The Ethernet approach: the shell does not care *why* cp
        // failed; the try simply retries and eventually gives up.
        let r = run_one(
            "try for 1 hour every 10 ms or 3 times\n\
               cp /no/such/source /tmp/ftsh-cp-dest2\n\
             end\n",
        );
        assert!(!r.success);
        assert_eq!(r.log.summary().attempts, 3);
        assert_eq!(r.process_outcomes.len(), 3);
    }
}
