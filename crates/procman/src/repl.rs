//! An interactive read-eval loop for ftsh.
//!
//! Lines are accumulated until every `try`/`forany`/`forall`/`if`/
//! `function` block is closed by its `end`, then parsed and run against
//! real processes. Shell variables and function definitions persist
//! across statements, so a session feels like one growing script:
//!
//! ```text
//! ftsh> x=41
//! ok
//! ftsh> if ${x} .lt. 42
//! ....>   echo almost
//! ....> end
//! almost
//! ok
//! ```

use crate::driver::{run_vm, RealOptions};
use ftsh::{parse, Env, Script, Stmt, Vm};
use std::io::{BufRead, Write};

/// How many block openers minus `end`s a snippet contains, counted the
/// way the REPL decides whether to keep reading. Quoted keywords at
/// line starts will fool it — an accepted REPL limitation.
pub fn block_balance(src: &str) -> i32 {
    let mut depth = 0;
    for line in src.lines() {
        let first = line.split_whitespace().next().unwrap_or("");
        match first {
            "try" | "forany" | "forall" | "if" | "function" => depth += 1,
            "end" => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// One REPL session over arbitrary input/output streams (so it can be
/// driven by tests as well as by a terminal).
pub struct Repl {
    env: Env,
    functions: Vec<Stmt>,
    opts: RealOptions,
    interactive: bool,
}

impl Repl {
    /// A fresh session.
    pub fn new(opts: RealOptions, interactive: bool) -> Repl {
        Repl {
            env: Env::new(),
            functions: Vec::new(),
            opts,
            interactive,
        }
    }

    /// Run one complete (block-balanced) snippet; returns its success,
    /// or a parse error message.
    pub fn eval(&mut self, snippet: &str) -> Result<bool, String> {
        let parsed = parse(snippet).map_err(|e| e.to_string())?;
        // Prepend remembered function definitions so calls resolve.
        let mut stmts = self.functions.clone();
        stmts.extend(parsed.stmts.iter().cloned());
        let script = Script {
            stmts: stmts.into(),
        };
        let vm = match self.opts.seed {
            Some(s) => Vm::with_env_seed(&script, self.env.clone(), s),
            None => Vm::with_env_seed(&script, self.env.clone(), rand_seed()),
        };
        let report = run_vm(vm, &self.opts);
        self.env = report.final_env.clone();
        // Remember any new function definitions for later snippets.
        for s in &parsed.stmts {
            if let Stmt::Function { name, .. } = s {
                self.functions
                    .retain(|f| !matches!(f, Stmt::Function { name: n, .. } if n == name));
                self.functions.push(s.clone());
            }
        }
        Ok(report.success)
    }

    /// Drive the session until EOF or `exit`. Returns the exit status
    /// of the last statement (0 if none ran).
    pub fn run(&mut self, input: impl BufRead, mut output: impl Write) -> i32 {
        let mut pending = String::new();
        let mut last_status = 0;
        if self.interactive {
            let _ = write!(output, "ftsh> ");
            let _ = output.flush();
        }
        for line in input.lines() {
            let Ok(line) = line else { break };
            if pending.is_empty() && line.trim() == "exit" {
                break;
            }
            pending.push_str(&line);
            pending.push('\n');
            if block_balance(&pending) > 0 {
                if self.interactive {
                    let _ = write!(output, "....> ");
                    let _ = output.flush();
                }
                continue;
            }
            let snippet = std::mem::take(&mut pending);
            if !snippet.trim().is_empty() {
                match self.eval(&snippet) {
                    Ok(ok) => {
                        last_status = i32::from(!ok);
                        let _ = writeln!(output, "{}", if ok { "ok" } else { "failed" });
                    }
                    Err(e) => {
                        last_status = 2;
                        let _ = writeln!(output, "parse error: {e}");
                    }
                }
            }
            if self.interactive {
                let _ = write!(output, "ftsh> ");
                let _ = output.flush();
            }
        }
        last_status
    }
}

fn rand_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn opts() -> RealOptions {
        RealOptions {
            seed: Some(1),
            ..RealOptions::default()
        }
    }

    #[test]
    fn balance_counts_blocks() {
        assert_eq!(block_balance("true\n"), 0);
        assert_eq!(block_balance("try for 5 seconds\n"), 1);
        assert_eq!(block_balance("try 1 times\nx\nend\n"), 0);
        assert_eq!(block_balance("if a .eql. b\nfunction f\nend\n"), 1);
    }

    #[test]
    fn variables_persist_across_statements() {
        let mut r = Repl::new(opts(), false);
        assert_eq!(r.eval("x=41\n"), Ok(true));
        assert_eq!(r.eval("sh -c \"test ${x} = 41\"\n"), Ok(true));
        assert_eq!(r.eval("sh -c \"test ${x} = 42\"\n"), Ok(false));
    }

    #[test]
    fn functions_persist_and_can_be_redefined() {
        let mut r = Repl::new(opts(), false);
        assert_eq!(r.eval("function f\n  failure\nend\n"), Ok(true));
        assert_eq!(r.eval("f\n"), Ok(false));
        assert_eq!(r.eval("function f\n  success\nend\n"), Ok(true));
        assert_eq!(r.eval("f\n"), Ok(true));
    }

    #[test]
    fn run_loop_reads_blocks_and_reports() {
        let input = Cursor::new(
            "y=ok\n\
             if ${y} .eql. ok\n\
             true\n\
             end\n\
             false\n\
             exit\n\
             true\n",
        );
        let mut out = Vec::new();
        let status = Repl::new(opts(), false).run(input, &mut out);
        let text = String::from_utf8(out).unwrap();
        let oks = text.matches("ok\n").count();
        assert!(oks >= 2, "{text}");
        assert!(text.contains("failed"));
        assert_eq!(status, 1, "last statement before exit failed");
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let input = Cursor::new("try for 5 bananas\nx\nend\ntrue\n");
        let mut out = Vec::new();
        let status = Repl::new(opts(), false).run(input, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("parse error"));
        assert_eq!(status, 0, "the session recovered: {text}");
    }
}
