//! POSIX process sessions and kill escalation.
//!
//! §4: *"Whenever ftsh creates a new child process, it allocates a new
//! POSIX session id with `setsid`. POSIX allows for an entire process
//! session to be terminated with a single system call… Such processes
//! are first gently requested to exit with SIGTERM and later forcibly
//! killed with SIGKILL."* This module is exactly that mechanism: spawn
//! in a fresh session, signal the whole session, escalate after a
//! grace period.

use ftsh::vm::{CmdInput, CommandSpec, OutSink};
use std::fs::OpenOptions;
use std::io::Write;
use std::os::unix::process::{CommandExt, ExitStatusExt};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// How a real process ended — the detail §2 laments is unavailable to
/// shells at the interface. ftsh keeps control flow untyped, but the
/// log records it for post-mortem analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// Normal exit with this status code.
    Exited(i32),
    /// Abnormal termination by this signal (e.g. the SIGTERM/SIGKILL
    /// of a deadline).
    Signaled(i32),
    /// The wait itself failed (should not happen in practice).
    Unknown,
}

impl ProcessOutcome {
    /// The POSIX success criterion: exited normally with status 0.
    pub fn success(self) -> bool {
        self == ProcessOutcome::Exited(0)
    }
}

/// How a kill escalation resolved: the polite path or the big hammer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscalationOutcome {
    /// The session honored SIGTERM (or was already gone) before the
    /// grace period expired; no SIGKILL was sent.
    ExitedWithinGrace,
    /// The session outlived the grace period and was SIGKILLed.
    ForceKilled,
}

/// A child process leading its own session.
#[derive(Debug)]
pub struct SessionChild {
    child: Child,
    pid: i32,
    /// Whether stdout was piped for capture.
    captures: bool,
}

/// Errors spawning a command.
#[derive(Debug)]
pub enum SpawnError {
    /// The program could not be started (not found, not executable…).
    Spawn(std::io::Error),
    /// A redirection file could not be opened.
    Redirect(std::io::Error),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Spawn(e) => write!(f, "cannot run program: {e}"),
            SpawnError::Redirect(e) => write!(f, "cannot open redirection: {e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl SessionChild {
    /// Spawn `spec` as the leader of a new POSIX session, with its
    /// redirections applied.
    pub fn spawn(spec: &CommandSpec) -> Result<SessionChild, SpawnError> {
        assert!(!spec.argv.is_empty(), "empty argv");
        let mut cmd = Command::new(&spec.argv[0]);
        cmd.args(&spec.argv[1..]);

        // Standard input.
        match &spec.input {
            Some(CmdInput::Data(_)) => {
                cmd.stdin(Stdio::piped());
            }
            Some(CmdInput::File(path)) => {
                let f = OpenOptions::new()
                    .read(true)
                    .open(path)
                    .map_err(SpawnError::Redirect)?;
                cmd.stdin(Stdio::from(f));
            }
            None => {
                cmd.stdin(Stdio::null());
            }
        }

        // Standard output (and error).
        let mut captures = false;
        match &spec.output {
            Some(OutSink::Var { .. }) => {
                captures = true;
                cmd.stdout(Stdio::piped());
                if spec.both {
                    // Capture stderr alongside stdout. A shared pipe
                    // would interleave arbitrarily; the VM only needs
                    // the combined text, so we route stderr into the
                    // same pipe via the child's fd table after fork.
                    cmd.stderr(Stdio::piped());
                } else {
                    cmd.stderr(Stdio::inherit());
                }
            }
            Some(OutSink::File { path, append }) => {
                let f = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .append(*append)
                    .truncate(!*append)
                    .open(path)
                    .map_err(SpawnError::Redirect)?;
                if spec.both {
                    let f2 = f.try_clone().map_err(SpawnError::Redirect)?;
                    cmd.stderr(Stdio::from(f2));
                }
                cmd.stdout(Stdio::from(f));
            }
            None => {}
        }

        // New session: the whole process tree can be signalled at once.
        // SAFETY: setsid is async-signal-safe and has no preconditions
        // in the just-forked child.
        unsafe {
            cmd.pre_exec(|| {
                if libc::setsid() == -1 {
                    return Err(std::io::Error::last_os_error());
                }
                Ok(())
            });
        }

        let mut child = cmd.spawn().map_err(SpawnError::Spawn)?;
        let pid = child.id() as i32;

        // Feed stdin data, then close the pipe so the child sees EOF.
        if let Some(CmdInput::Data(data)) = &spec.input {
            if let Some(mut stdin) = child.stdin.take() {
                // A child that never reads can make this block; data
                // sizes here are shell-variable sized, well under pipe
                // capacity, so a straight write is fine.
                let _ = stdin.write_all(data.as_bytes());
            }
        }

        Ok(SessionChild {
            child,
            pid,
            captures,
        })
    }

    /// The session (and process-group) id.
    pub fn pid(&self) -> i32 {
        self.pid
    }

    /// Send a signal to the whole session.
    pub fn signal_session(pid: i32, sig: i32) {
        // SAFETY: plain kill(2); an ESRCH result (already gone) is fine.
        unsafe {
            libc::kill(-pid, sig);
        }
    }

    /// True when no process in the session can still receive a
    /// signal. A reaped tree yields ESRCH from `kill(-pid, 0)`.
    fn session_gone(pid: i32) -> bool {
        // SAFETY: signal 0 only checks deliverability, nothing is sent.
        let rc = unsafe { libc::kill(-pid, 0) };
        rc == -1 && std::io::Error::last_os_error().raw_os_error() == Some(libc::ESRCH)
    }

    /// Politely terminate the session, then force-kill after `grace`.
    /// Spawns a detached escalation thread so the caller never blocks.
    pub fn kill_escalate(pid: i32, grace: Duration) {
        let _ = Self::escalate(pid, grace);
    }

    /// [`SessionChild::kill_escalate`] with an observable outcome:
    /// SIGTERM is sent immediately, then a helper thread *polls* for
    /// the session's exit and only fires SIGKILL if the grace period
    /// truly expires. A SIGTERM-compliant child therefore ends the
    /// escalation (and releases the helper thread) well under `grace`
    /// instead of every kill holding a thread for the full period and
    /// SIGKILLing an already-recycled session id.
    pub fn escalate(pid: i32, grace: Duration) -> std::thread::JoinHandle<EscalationOutcome> {
        Self::signal_session(pid, libc::SIGTERM);
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + grace;
            loop {
                if Self::session_gone(pid) {
                    return EscalationOutcome::ExitedWithinGrace;
                }
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    Self::signal_session(pid, libc::SIGKILL);
                    return EscalationOutcome::ForceKilled;
                }
                std::thread::sleep(left.min(Duration::from_millis(10)));
            }
        })
    }

    /// Wait for the child to exit, collecting captured output. Blocks.
    pub fn wait(self) -> (bool, String) {
        let (outcome, text) = self.wait_detailed();
        (outcome.success(), text)
    }

    /// Like [`SessionChild::wait`], but reporting how the process
    /// ended (exit code vs. signal) for the post-mortem log.
    pub fn wait_detailed(self) -> (ProcessOutcome, String) {
        let SessionChild {
            child, captures, ..
        } = self;
        match child.wait_with_output() {
            Ok(out) => {
                let mut text = String::new();
                if captures {
                    text.push_str(&String::from_utf8_lossy(&out.stdout));
                    if !out.stderr.is_empty() {
                        text.push_str(&String::from_utf8_lossy(&out.stderr));
                    }
                }
                let outcome = match (out.status.code(), out.status.signal()) {
                    (Some(code), _) => ProcessOutcome::Exited(code),
                    (None, Some(sig)) => ProcessOutcome::Signaled(sig),
                    (None, None) => ProcessOutcome::Unknown,
                };
                (outcome, text)
            }
            Err(_) => (ProcessOutcome::Unknown, String::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::vm::{CmdResult, CommandSpec};

    fn spec(argv: &[&str]) -> CommandSpec {
        CommandSpec {
            argv: argv.iter().map(|s| ftsh::Istr::from(*s)).collect(),
            input: None,
            output: None,
            both: false,
        }
    }

    #[test]
    fn true_succeeds_false_fails() {
        let c = SessionChild::spawn(&spec(&["true"])).unwrap();
        assert!(c.wait().0);
        let c = SessionChild::spawn(&spec(&["false"])).unwrap();
        assert!(!c.wait().0);
    }

    #[test]
    fn missing_program_is_a_spawn_error() {
        let e = SessionChild::spawn(&spec(&["/no/such/program-xyz"]));
        assert!(matches!(e, Err(SpawnError::Spawn(_))));
    }

    #[test]
    fn captures_stdout() {
        let mut s = spec(&["echo", "hello"]);
        s.output = Some(OutSink::Var {
            name: "x".into(),
            append: false,
        });
        let c = SessionChild::spawn(&s).unwrap();
        let (ok, out) = c.wait();
        assert!(ok);
        assert_eq!(out, "hello\n");
    }

    #[test]
    fn captures_stderr_with_both() {
        let mut s = spec(&["sh", "-c", "echo err >&2"]);
        s.output = Some(OutSink::Var {
            name: "x".into(),
            append: false,
        });
        s.both = true;
        let c = SessionChild::spawn(&s).unwrap();
        let (ok, out) = c.wait();
        assert!(ok);
        assert!(out.contains("err"));
    }

    #[test]
    fn stdin_data_reaches_child() {
        let mut s = spec(&["cat"]);
        s.input = Some(CmdInput::Data("ping".into()));
        s.output = Some(OutSink::Var {
            name: "x".into(),
            append: false,
        });
        let c = SessionChild::spawn(&s).unwrap();
        let (ok, out) = c.wait();
        assert!(ok);
        assert_eq!(out, "ping");
    }

    #[test]
    fn file_redirection_writes_and_appends() {
        let dir = std::env::temp_dir().join(format!("ftsh-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        let p = path.to_str().unwrap().to_string();

        let mut s = spec(&["echo", "one"]);
        s.output = Some(OutSink::File {
            path: p.as_str().into(),
            append: false,
        });
        SessionChild::spawn(&s).unwrap().wait();

        let mut s = spec(&["echo", "two"]);
        s.output = Some(OutSink::File {
            path: p.as_str().into(),
            append: true,
        });
        SessionChild::spawn(&s).unwrap().wait();

        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "one\ntwo\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_escalate_terminates_sleepers() {
        let c = SessionChild::spawn(&spec(&["sleep", "30"])).unwrap();
        let pid = c.pid();
        let started = std::time::Instant::now();
        SessionChild::kill_escalate(pid, Duration::from_millis(200));
        let (outcome, _) = c.wait_detailed();
        assert!(!outcome.success(), "killed process reports failure");
        assert!(
            matches!(outcome, ProcessOutcome::Signaled(sig) if sig == libc::SIGTERM || sig == libc::SIGKILL),
            "death by signal is visible post mortem: {outcome:?}"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn exit_codes_are_detailed() {
        let c = SessionChild::spawn(&spec(&["sh", "-c", "exit 42"])).unwrap();
        let (outcome, _) = c.wait_detailed();
        assert_eq!(outcome, ProcessOutcome::Exited(42));
        assert!(!outcome.success());
        let c = SessionChild::spawn(&spec(&["true"])).unwrap();
        assert_eq!(c.wait_detailed().0, ProcessOutcome::Exited(0));
    }

    #[test]
    fn session_kill_reaches_grandchildren() {
        // sh spawns a sleeping grandchild; killing the session must
        // reach it because the whole tree shares the session id.
        let c = SessionChild::spawn(&spec(&["sh", "-c", "sleep 30 & wait"])).unwrap();
        let pid = c.pid();
        std::thread::sleep(Duration::from_millis(100));
        SessionChild::kill_escalate(pid, Duration::from_millis(200));
        let started = std::time::Instant::now();
        let (ok, _) = c.wait();
        assert!(!ok);
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn sigterm_compliant_child_ends_escalation_early() {
        // A 10 s grace must not cost 10 s when the child honors
        // SIGTERM immediately: the escalation polls for exit.
        let c = SessionChild::spawn(&spec(&["sleep", "30"])).unwrap();
        let started = std::time::Instant::now();
        let h = SessionChild::escalate(c.pid(), Duration::from_secs(10));
        let (outcome, _) = c.wait_detailed();
        assert_eq!(outcome, ProcessOutcome::Signaled(libc::SIGTERM));
        let esc = h.join().unwrap();
        assert_eq!(esc, EscalationOutcome::ExitedWithinGrace);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "escalation stalled {:?} on a compliant child",
            started.elapsed()
        );
    }

    #[test]
    fn stubborn_child_is_force_killed_at_grace() {
        // Ignore SIGTERM and busy-loop; only SIGKILL can end this.
        let c =
            SessionChild::spawn(&spec(&["sh", "-c", "trap '' TERM; while :; do :; done"])).unwrap();
        // Let the trap install before the SIGTERM arrives.
        std::thread::sleep(Duration::from_millis(200));
        let h = SessionChild::escalate(c.pid(), Duration::from_millis(300));
        let (outcome, _) = c.wait_detailed();
        assert_eq!(outcome, ProcessOutcome::Signaled(libc::SIGKILL));
        assert_eq!(h.join().unwrap(), EscalationOutcome::ForceKilled);
    }

    #[test]
    fn result_roundtrip_types() {
        // Sanity on the ftsh-facing result shape.
        let r = CmdResult::ok("x");
        assert!(r.success);
    }

    #[test]
    fn concurrent_escalation_reaps_every_session() {
        // Eight live sessions at once — half SIGTERM-compliant, half
        // trapping TERM, every one holding a sleeping grandchild —
        // and the SIGTERM→SIGKILL escalation must reap all of them:
        // no session may survive, no process group may be orphaned.
        const N: usize = 8;
        let mut kids = Vec::with_capacity(N);
        for i in 0..N {
            let script = if i % 2 == 0 {
                // Compliant: TERM kills the shell and its grandchild.
                "sleep 30 & wait"
            } else {
                // Stubborn: ignores TERM; only the KILL at grace end
                // can take the group down.
                "trap '' TERM; sleep 30 & while :; do sleep 1; done"
            };
            kids.push(SessionChild::spawn(&spec(&["sh", "-c", script])).unwrap());
        }
        // Let the traps install and the grandchildren fork.
        std::thread::sleep(Duration::from_millis(300));

        let pids: Vec<i32> = kids.iter().map(|c| c.pid()).collect();
        let handles: Vec<_> = pids
            .iter()
            .map(|&pid| SessionChild::escalate(pid, Duration::from_millis(400)))
            .collect();

        let mut compliant = 0;
        let mut forced = 0;
        for h in handles {
            match h.join().unwrap() {
                EscalationOutcome::ExitedWithinGrace => compliant += 1,
                EscalationOutcome::ForceKilled => forced += 1,
            }
        }
        assert_eq!(compliant + forced, N);
        assert!(forced >= 1, "trap-TERM sessions require the SIGKILL leg");

        for c in kids {
            let (outcome, _) = c.wait_detailed();
            assert!(!outcome.success(), "killed session must report failure");
        }
        // Conservation: every session id must answer ESRCH — a live
        // group member (orphaned grandchild included) would still
        // accept signal 0.
        for pid in pids {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !SessionChild::session_gone(pid) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "session {pid} leaked an orphaned process group"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
