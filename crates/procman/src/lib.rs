//! # procman — real POSIX execution for ftsh
//!
//! The production driver for the fault tolerant shell: external
//! commands run as real processes, each the leader of its own POSIX
//! session so that a `try` deadline can terminate the entire process
//! tree with SIGTERM, escalating to SIGKILL after a grace period —
//! the mechanism §4 of the paper describes.
//!
//! The crate also ships the `ftsh` command-line binary.

#![warn(missing_docs)]

pub mod driver;
pub mod repl;
pub mod session;

pub use driver::{
    install_sigterm_hook, run_script, run_vm, run_vm_traced, RealOptions, RealReport,
};
pub use repl::Repl;
pub use session::{EscalationOutcome, ProcessOutcome, SessionChild, SpawnError};
