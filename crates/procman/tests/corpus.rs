//! The script corpus: real .ftsh files run end to end through the
//! `ftsh` CLI against /bin tools. Each file documents one idiom; the
//! expectations table says whether the script should succeed.

use std::path::Path;
use std::process::Command;

const EXPECTATIONS: &[(&str, bool)] = &[
    ("unpack.ftsh", true),
    ("carrier_sense.ftsh", true),
    ("forany_fallback.ftsh", true),
    ("forall_parallel.ftsh", true),
    ("catch_cleanup.ftsh", true),
    ("io_transaction.ftsh", true),
    ("deadline_kill.ftsh", false),
    ("functions.ftsh", true),
    ("precheck.ftsh", true),
];

fn scripts_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scripts")
}

#[test]
fn corpus_is_fully_listed() {
    let mut on_disk: Vec<String> = std::fs::read_dir(scripts_dir())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXPECTATIONS.iter().map(|(n, _)| n.to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed, "every corpus script needs an expectation");
}

#[test]
fn corpus_scripts_parse() {
    for (name, _) in EXPECTATIONS {
        let st = Command::new(env!("CARGO_BIN_EXE_ftsh"))
            .arg("--check")
            .arg(scripts_dir().join(name))
            .status()
            .unwrap();
        assert!(st.success(), "{name} must parse");
    }
}

#[test]
fn corpus_scripts_run_with_expected_outcomes() {
    for (name, expect_ok) in EXPECTATIONS {
        let started = std::time::Instant::now();
        let out = Command::new(env!("CARGO_BIN_EXE_ftsh"))
            .arg(scripts_dir().join(name))
            .output()
            .unwrap();
        let ok = out.status.code() == Some(0);
        assert_eq!(
            ok,
            *expect_ok,
            "{name}: expected success={expect_ok}, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(20),
            "{name} took too long"
        );
    }
}

#[test]
fn corpus_scripts_pretty_roundtrip() {
    for (name, _) in EXPECTATIONS {
        let src = std::fs::read_to_string(scripts_dir().join(name)).unwrap();
        let a = ftsh::parse(&src).unwrap();
        let b = ftsh::parse(&ftsh::pretty(&a)).unwrap();
        assert_eq!(a, b, "{name} round-trips");
    }
}
