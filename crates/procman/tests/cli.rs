//! End-to-end tests of the `ftsh` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn ftsh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftsh"))
}

#[test]
fn inline_script_success_and_failure_exit_codes() {
    let st = ftsh().args(["-c", "true\n"]).status().unwrap();
    assert_eq!(st.code(), Some(0));
    let st = ftsh().args(["-c", "false\n"]).status().unwrap();
    assert_eq!(st.code(), Some(1));
}

#[test]
fn parse_error_exits_2() {
    let out = ftsh()
        .args(["-c", "try for 5 minutes\nx\n"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("parse error at 1:1"),
        "diagnostic carries line:col: {err}"
    );
}

#[test]
fn parse_error_points_a_caret_at_the_offender() {
    // Regression: a known-bad script must produce a line:col diagnostic
    // with a caret excerpt under the offending token.
    let dir = std::env::temp_dir().join(format!("ftsh-caret-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.ftsh");
    std::fs::write(&path, "wget url\ntry for 9 fortnights\n  x\nend\n").unwrap();
    let out = ftsh().arg(path.to_str().unwrap()).output().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("parse error at 2:11"),
        "line:col of the bad unit: {err}"
    );
    assert!(
        err.contains("2 | try for 9 fortnights"),
        "source excerpt: {err}"
    );
    assert!(err.contains("^^^^^^^^^^"), "caret under the token: {err}");
}

#[test]
fn check_mode_parses_without_running() {
    let st = ftsh()
        .args(["--check", "-c", "definitely-not-a-real-program\n"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0), "--check never executes");
}

#[test]
fn pretty_mode_prints_canonical_form() {
    let out = ftsh()
        .args([
            "--pretty",
            "-c",
            "try   for  5    minutes\n  wget url\nend\n",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text, "try for 5 minutes\n  wget url\nend\n");
}

#[test]
fn script_file_runs() {
    let dir = std::env::temp_dir().join(format!("ftsh-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.ftsh");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "#!/usr/bin/env ftsh").unwrap();
    writeln!(f, "echo ok -> x").unwrap();
    writeln!(f, "if ${{x}} .eql. ok").unwrap();
    writeln!(f, "true").unwrap();
    writeln!(f, "else").unwrap();
    writeln!(f, "failure").unwrap();
    writeln!(f, "end").unwrap();
    drop(f);
    let st = ftsh().arg(path.to_str().unwrap()).status().unwrap();
    assert_eq!(st.code(), Some(0), "shebang line is a comment");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_mode_reports_attempts() {
    let out = ftsh()
        .args([
            "--log",
            "-c",
            "try for 1 hour every 10 ms or 3 times\nfalse\nend\n",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("attempt #3"), "log shows attempts: {err}");
    assert!(err.contains("try exhausted"), "log shows exhaustion: {err}");
}

#[test]
fn missing_file_is_a_usage_error() {
    let st = ftsh().arg("/no/such/script.ftsh").status().unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn usage_error_on_bad_flags() {
    let st = ftsh().arg("--bogus").status().unwrap();
    assert_eq!(st.code(), Some(2));
    let st = ftsh().args(["-c"]).status().unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn lint_findings_exit_2_and_script_failure_exits_1() {
    // The exit-code contract: a script that *runs and fails* is 1
    // (retryable work), a script the analyzer rejects is 2 (malformed).
    let st = ftsh().args(["-c", "false\n"]).status().unwrap();
    assert_eq!(st.code(), Some(1), "script failure is exit 1");

    let out = ftsh()
        .args(["--lint", "-c", "try\n  submit job\nend\n"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "lint findings are exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unbounded-try"), "{err}");
    assert!(err.contains("no-carrier-sense"), "{err}");
    assert!(err.contains("discipline Aloha"), "{err}");

    // A clean script lints silently and never executes.
    let st = ftsh()
        .args(["--lint", "-c", "definitely-not-a-real-program\n"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0), "--lint never executes");
}

#[test]
fn lint_max_budget_rejects_wide_envelopes() {
    // try 10 times: worst-case backoff envelope 2*(2^9 - 1) = 1022 s.
    let out = ftsh()
        .args([
            "--lint",
            "--max-budget",
            "10m",
            "-c",
            "try for 1 hour or 10 times\n  x\nend\n",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget-exceeded"), "{err}");
    assert!(err.contains("1022s"), "{err}");

    // 5 attempts (30 s) fit the same bound.
    let st = ftsh()
        .args([
            "--lint",
            "--max-budget",
            "10m",
            "-c",
            "try for 1 hour or 5 times\n  x\nend\n",
        ])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));

    let st = ftsh()
        .args(["--lint", "--max-budget", "nonsense"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(2), "bad duration is a usage error");
}

#[test]
fn lint_define_silences_harness_variables() {
    let out = ftsh()
        .args(["--lint", "-c", "${shimdir}/tool arg\n"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("use-before-assign"));

    let st = ftsh()
        .args([
            "--lint",
            "--define",
            "shimdir",
            "-c",
            "${shimdir}/tool arg\n",
        ])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(0));
}

#[test]
fn deadline_kills_inline_sleep() {
    let started = std::time::Instant::now();
    let st = ftsh()
        .args(["-c", "try for 1 seconds or 1 times\nsleep 30\nend\n"])
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "the CLI enforced the deadline: {:?}",
        started.elapsed()
    );
}

#[test]
fn timeline_mode_renders_swimlanes() {
    let out = ftsh()
        .args([
            "--timeline",
            "-c",
            "forall t in 0.05 0.05\nsleep ${t}\nend\n",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("task 0"), "{err}");
    assert!(
        err.contains("task 1"),
        "branches get their own lanes: {err}"
    );
    assert!(err.contains("forall x2"), "{err}");
}

#[test]
fn backoff_flags_change_retry_pacing() {
    // Two failing attempts with a 50 ms base and no jitter finish fast
    // and deterministically; the paper default (1 s base) would take
    // over a second.
    let started = std::time::Instant::now();
    let st = ftsh()
        .args([
            "--backoff-base",
            "50",
            "--no-jitter",
            "--seed",
            "1",
            "-c",
            "try 3 times\nfalse\nend\n",
        ])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_millis(900),
        "50ms+100ms backoff, took {elapsed:?}"
    );
}

#[test]
fn backoff_flag_usage_errors() {
    assert_eq!(
        ftsh().args(["--backoff-base"]).status().unwrap().code(),
        Some(2)
    );
    assert_eq!(
        ftsh()
            .args(["--backoff-cap", "xyz", "-c", "true\n"])
            .status()
            .unwrap()
            .code(),
        Some(2)
    );
}

#[test]
fn repl_mode_persists_variables_across_lines() {
    use std::io::Write;
    let mut child = ftsh()
        .arg("--repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"n=5\nif ${n} .eq. 5\ntrue\nend\nexit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.matches("ok").count() >= 2, "{text}");
}

#[test]
fn sigterm_relays_to_nested_shells_and_their_children() {
    // A parent ftsh runs a child ftsh (a new session!), which runs a
    // long sleep in yet another session. SIGTERM to the parent must
    // tear the whole arrangement down promptly — §4's nested-shell
    // protocol.
    use std::io::Read;
    let ftsh_bin = env!("CARGO_BIN_EXE_ftsh");
    let mut child = ftsh()
        .args(["-c", &format!("{ftsh_bin} -c \"sleep 30\"\n")])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(600));
    // SIGTERM the parent shell process itself.
    unsafe {
        libc::kill(child.id() as i32, libc::SIGTERM);
    }
    let started = std::time::Instant::now();
    let status = child.wait().unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "parent exited promptly: {:?}",
        started.elapsed()
    );
    assert_ne!(status.code(), Some(0), "terminated run reports failure");
    let mut buf = String::new();
    if let Some(mut e) = child.stderr.take() {
        let _ = e.read_to_string(&mut buf);
    }
}
