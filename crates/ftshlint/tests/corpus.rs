//! The lint gate over the conformance corpus and the example scripts:
//! every script must be lint-clean or carry exactly its expected
//! diagnostics. CI runs this test in the `lint-corpus` job.

use ftshlint::{lint, Discipline, Options};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/conformance")
}

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/ftsh")
}

fn scripts(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ftsh"))
        .collect();
    v.sort();
    v
}

/// Rules a script is *expected* to trip, by file name. Anything not
/// listed here must lint clean (its annotations included).
fn expected(name: &str) -> BTreeSet<&'static str> {
    match name {
        "aloha_submit.ftsh" => ["unbounded-try", "no-carrier-sense"].into(),
        "fixed_hammer.ftsh" => ["retry-without-backoff-room"].into(),
        _ => BTreeSet::new(),
    }
}

#[test]
fn conformance_corpus_is_lint_clean() {
    let files = scripts(&corpus_dir());
    assert_eq!(files.len(), 22, "corpus moved?");
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let report = lint(&src, &Options::default())
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let got: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(
            got.is_empty(),
            "{} has unexpected findings: {:?}",
            path.display(),
            report.diagnostics
        );
    }
}

#[test]
fn examples_carry_exactly_their_expected_diagnostics() {
    let files = scripts(&examples_dir());
    assert_eq!(files.len(), 5, "examples moved?");
    for path in files {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        let report = lint(&src, &Options::default())
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&src)));
        let got: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(
            got,
            expected(&name),
            "{name}: findings {:?}",
            report.diagnostics
        );
    }
}

/// The acceptance pair: the deliberately Aloha-shaped example is
/// flagged as such, and the paper's nested-try corpus idiom passes.
#[test]
fn aloha_example_flags_and_nested_ethernet_passes() {
    let aloha = std::fs::read_to_string(examples_dir().join("aloha_submit.ftsh")).unwrap();
    let r = lint(&aloha, &Options::default()).unwrap();
    let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"no-carrier-sense"), "{rules:?}");
    assert!(rules.contains(&"unbounded-try"), "{rules:?}");
    assert_eq!(r.discipline, Discipline::Aloha);
    // Both findings point at the `try` header in the source.
    for d in &r.diagnostics {
        assert_eq!(&aloha[d.span.start as usize..d.span.end as usize], "try");
    }

    let nested = std::fs::read_to_string(corpus_dir().join("12_nested_ethernet.ftsh")).unwrap();
    let r = lint(&nested, &Options::default()).unwrap();
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.discipline, Discipline::Ethernet);
}

/// Classification of the example personalities matches §5.
#[test]
fn example_disciplines_match_their_names() {
    for (file, want) in [
        ("ethernet_submit.ftsh", Discipline::Ethernet),
        ("aloha_submit.ftsh", Discipline::Aloha),
        ("fixed_hammer.ftsh", Discipline::Fixed),
        // The coordinated-workload personalities: carrier-sensed
        // barrier rank and DAG job, Ethernet by construction and
        // free of unbounded tries.
        ("allreduce_rank.ftsh", Discipline::Ethernet),
        ("dag_merge_job.ftsh", Discipline::Ethernet),
    ] {
        let src = std::fs::read_to_string(examples_dir().join(file)).unwrap();
        let r = lint(&src, &Options::default()).unwrap();
        assert_eq!(r.discipline, want, "{file}");
        if file.starts_with("allreduce") || file.starts_with("dag") {
            assert!(
                !r.diagnostics.iter().any(|d| d.rule == "unbounded-try"),
                "{file}: every coord try must be bounded"
            );
        }
    }
}
