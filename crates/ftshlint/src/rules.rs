//! The lint rules: retry-discipline checks and dataflow checks.
//!
//! Both walkers run over the spanned AST that the parser now produces.
//! Every diagnostic carries the byte span of the offending construct —
//! the `try` header for discipline findings, the word or statement for
//! dataflow findings — so callers can render carets against the source.

use crate::{Diagnostic, Severity};
use ftsh::{Block, Redir, RedirTarget, Seg, Span, Stmt, Word};
use retry::Dur;
use std::collections::{HashMap, HashSet};

/// Base backoff delay from §4 of the paper (1 s): a time budget below
/// this cannot fit even the first retry delay.
const BACKOFF_BASE: Dur = Dur::from_secs(1);

// ---------------------------------------------------------------------
// Discipline rules
// ---------------------------------------------------------------------

pub(crate) struct DisciplineWalker<'a> {
    pub diags: &'a mut Vec<Diagnostic>,
    /// Tightest enclosing `try for` budget, if any.
    outer_time: Option<Dur>,
    /// How many `try` bodies enclose the current statement.
    retry_depth: u32,
    /// True once any `try` is seen (used for classification).
    pub saw_try: bool,
    /// True once any blind unbounded retry is seen (Aloha shape).
    pub saw_aloha: bool,
    /// True once any zero-backoff retry is seen (Fixed shape).
    pub saw_fixed: bool,
}

impl<'a> DisciplineWalker<'a> {
    pub fn new(diags: &'a mut Vec<Diagnostic>) -> DisciplineWalker<'a> {
        DisciplineWalker {
            diags,
            outer_time: None,
            retry_depth: 0,
            saw_try: false,
            saw_aloha: false,
            saw_fixed: false,
        }
    }

    pub fn block(&mut self, b: &Block) {
        for (stmt, span) in b.iter_spanned() {
            self.stmt(stmt, span);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, span: Span) {
        match stmt {
            Stmt::Try { spec, body, catch } => {
                self.saw_try = true;
                let at = if spec.span.is_known() {
                    spec.span
                } else {
                    span
                };
                self.try_header(spec, body, at);
                let saved = self.outer_time;
                self.outer_time = match (spec.time, saved) {
                    (Some(t), Some(o)) => Some(t.min(o)),
                    (Some(t), None) => Some(t),
                    (None, o) => o,
                };
                self.retry_depth += 1;
                self.block(body);
                self.retry_depth -= 1;
                // The catch runs after the body's budget is spent, under
                // the *enclosing* deadline only.
                self.outer_time = saved;
                if let Some(c) = catch {
                    self.block(c);
                }
            }
            Stmt::ForAny { values, body, .. } | Stmt::ForAll { values, body, .. } => {
                if values.len() == 1 {
                    let kw = if matches!(stmt, Stmt::ForAny { .. }) {
                        "forany"
                    } else {
                        "forall"
                    };
                    self.diags.push(Diagnostic {
                        rule: "single-alternative",
                        severity: Severity::Info,
                        span,
                        message: format!("`{kw}` over a single alternative adds no redundancy"),
                        suggestion: Some(
                            "list more alternatives, or inline the body as a plain group"
                                .to_string(),
                        ),
                    });
                }
                self.block(body);
            }
            Stmt::If { then, els, .. } => {
                self.block(then);
                if let Some(e) = els {
                    self.block(e);
                }
            }
            Stmt::Function { body, .. } => {
                // A function body runs under the caller's deadlines and
                // retry loops, which are unknown at the definition:
                // analyze it outside any retry context.
                let saved_time = self.outer_time.take();
                let saved_depth = std::mem::take(&mut self.retry_depth);
                self.block(body);
                self.outer_time = saved_time;
                self.retry_depth = saved_depth;
            }
            Stmt::Command(c) => self.command_io(c, span),
            Stmt::Assign { .. } | Stmt::Failure | Stmt::Success => {}
        }
    }

    fn try_header(&mut self, spec: &ftsh::TrySpec, body: &Block, at: Span) {
        if spec.time.is_none() && spec.attempts.is_none() {
            self.saw_aloha = true;
            self.diags.push(Diagnostic {
                rule: "unbounded-try",
                severity: Severity::Warning,
                span: at,
                message: "this `try` has no time or attempt limit and may retry forever"
                    .to_string(),
                suggestion: Some(
                    "bound it: `try for <time>`, `try <n> times`, or both".to_string(),
                ),
            });
        }
        if spec.time.is_none() && !senses_carrier(body) {
            self.saw_aloha = true;
            self.diags.push(Diagnostic {
                rule: "no-carrier-sense",
                severity: Severity::Warning,
                span: at,
                message: "retry loop resubmits blindly: no deadline and no condition \
                          consulted before retrying (the Aloha shape of §5)"
                    .to_string(),
                suggestion: Some(
                    "add `for <time>` so the loop senses elapsed time, or probe the \
                     medium with an `if` before committing work (§6)"
                        .to_string(),
                ),
            });
        }
        match spec.every {
            Some(e) if e == Dur::ZERO => {
                self.saw_fixed = true;
                self.diags.push(Diagnostic {
                    rule: "retry-without-backoff-room",
                    severity: Severity::Warning,
                    span: at,
                    message: "`every 0` retries with zero delay — the Fixed hammer of §5"
                        .to_string(),
                    suggestion: Some(
                        "drop `every` to get exponential backoff, or give it a nonzero \
                         interval"
                            .to_string(),
                    ),
                });
            }
            Some(e) => {
                if let Some(t) = spec.time {
                    if e >= t {
                        self.saw_fixed = true;
                        self.diags.push(Diagnostic {
                            rule: "retry-without-backoff-room",
                            severity: Severity::Warning,
                            span: at,
                            message: format!(
                                "the fixed `every {e}` interval does not fit inside the \
                                 `for {t}` budget: no retry can ever start"
                            ),
                            suggestion: Some(
                                "shrink the interval or grow the time budget".to_string(),
                            ),
                        });
                    }
                }
            }
            None => {
                if let Some(t) = spec.time {
                    if t <= BACKOFF_BASE && spec.attempts != Some(1) {
                        self.saw_fixed = true;
                        self.diags.push(Diagnostic {
                            rule: "retry-without-backoff-room",
                            severity: Severity::Warning,
                            span: at,
                            message: format!(
                                "a `for {t}` budget cannot fit the 1 s base backoff \
                                 delay: the loop exhausts after one attempt"
                            ),
                            suggestion: Some(
                                "grow the budget past the base delay, or make the single \
                                 attempt explicit with `or 1 times`"
                                    .to_string(),
                            ),
                        });
                    }
                }
            }
        }
        if let (Some(t), Some(o)) = (spec.time, self.outer_time) {
            if t >= o {
                self.diags.push(Diagnostic {
                    rule: "dead-deadline",
                    severity: Severity::Warning,
                    span: at,
                    message: format!(
                        "inner deadline `for {t}` can never fire: an enclosing `try` \
                         already limits this region to {o}"
                    ),
                    suggestion: Some(
                        "shrink the inner deadline below the enclosing budget, or drop it"
                            .to_string(),
                    ),
                });
            }
        }
        if spec.time == Some(Dur::ZERO) {
            self.diags.push(Diagnostic {
                rule: "dead-deadline",
                severity: Severity::Warning,
                span: at,
                message: "a `for 0` budget expires before the first attempt begins".to_string(),
                suggestion: Some("give the try a positive time budget".to_string()),
            });
        }
    }

    fn command_io(&mut self, c: &ftsh::Command, span: Span) {
        if self.retry_depth == 0 {
            return;
        }
        for r in &c.redirs {
            if let Redir::Out {
                to: RedirTarget::File,
                append,
                target,
                ..
            } = r
            {
                let at = if target.span().is_known() {
                    target.span()
                } else {
                    span
                };
                let verb = if *append { "appends to" } else { "truncates" };
                self.diags.push(Diagnostic {
                    rule: "non-transactional-io",
                    severity: Severity::Warning,
                    span: at,
                    message: format!(
                        "retried command {verb} a file: killed attempts leave partial \
                         output behind (§3's I/O transactions exist to prevent this)"
                    ),
                    suggestion: Some(
                        "capture into a variable with `->` and write the file once, \
                         after the try succeeds"
                            .to_string(),
                    ),
                });
            }
        }
    }
}

/// True when a retried body consults anything before recommitting work:
/// an `if` anywhere inside it, or an inner `try for` whose own deadline
/// senses elapsed time.
fn senses_carrier(b: &Block) -> bool {
    b.iter().any(|s| match s {
        Stmt::If { .. } => true,
        Stmt::Try { spec, body, catch } => {
            spec.time.is_some()
                || senses_carrier(body)
                || catch.as_ref().is_some_and(senses_carrier)
        }
        Stmt::ForAny { body, .. } | Stmt::ForAll { body, .. } | Stmt::Function { body, .. } => {
            senses_carrier(body)
        }
        _ => false,
    })
}

// ---------------------------------------------------------------------
// Dataflow rules
// ---------------------------------------------------------------------

/// Collect every variable *use* in the script: `${name}` segments in
/// any word, `-<` variable sources, and `->>` append targets (an append
/// reads the value it extends).
fn collect_uses(stmts: &Block, uses: &mut HashSet<String>) {
    fn word(w: &Word, uses: &mut HashSet<String>) {
        for s in w.segs() {
            if let Seg::Var(v) = s {
                uses.insert(v.to_string());
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Command(c) => {
                for w in &c.words {
                    word(w, uses);
                }
                for r in &c.redirs {
                    match r {
                        Redir::Out {
                            to, append, target, ..
                        } => {
                            word(target, uses);
                            if *to == RedirTarget::Variable && *append {
                                if let Some(name) = target.as_lit() {
                                    uses.insert(name.to_string());
                                }
                            }
                        }
                        Redir::In { from, source } => {
                            word(source, uses);
                            if *from == RedirTarget::Variable {
                                if let Some(name) = source.as_lit() {
                                    uses.insert(name.to_string());
                                }
                            }
                        }
                    }
                }
            }
            Stmt::Assign { value, .. } => word(value, uses),
            Stmt::Try { body, catch, .. } => {
                collect_uses(body, uses);
                if let Some(c) = catch {
                    collect_uses(c, uses);
                }
            }
            Stmt::ForAny { values, body, .. } | Stmt::ForAll { values, body, .. } => {
                for v in values {
                    word(v, uses);
                }
                collect_uses(body, uses);
            }
            Stmt::If { cond, then, els } => {
                word(&cond.lhs, uses);
                word(&cond.rhs, uses);
                collect_uses(then, uses);
                if let Some(e) = els {
                    collect_uses(e, uses);
                }
            }
            Stmt::Function { body, .. } => collect_uses(body, uses),
            Stmt::Failure | Stmt::Success => {}
        }
    }
}

pub(crate) struct DataflowWalker<'a> {
    pub diags: &'a mut Vec<Diagnostic>,
    /// Variables that may be defined on some path so far.
    defined: HashSet<String>,
    /// Every `${name}` referenced anywhere in the script.
    all_uses: HashSet<String>,
    /// Function names seen (calls to them may bind outward).
    funcs: HashMap<String, HashSet<String>>,
    /// Set once a capture target is computed at runtime: every name may
    /// be defined after that, so use-before-assign goes quiet.
    dynamic_defs: bool,
    /// Names reported once already (one finding per name).
    reported_undef: HashSet<String>,
}

impl<'a> DataflowWalker<'a> {
    pub fn new(diags: &'a mut Vec<Diagnostic>, predefined: &[String], script: &Block) -> Self {
        let mut all_uses = HashSet::new();
        collect_uses(script, &mut all_uses);
        DataflowWalker {
            diags,
            defined: predefined.iter().cloned().collect(),
            all_uses,
            funcs: HashMap::new(),
            dynamic_defs: false,
            reported_undef: HashSet::new(),
        }
    }

    pub fn block(&mut self, b: &Block) {
        let mut reachable = true;
        for (stmt, span) in b.iter_spanned() {
            if !reachable {
                self.diags.push(Diagnostic {
                    rule: "unreachable-code",
                    severity: Severity::Warning,
                    span,
                    message: "statement is unreachable: the group already resolved with \
                              `failure`/`success` above"
                        .to_string(),
                    suggestion: Some("remove it, or move it before the throw".to_string()),
                });
                // One finding per block is enough.
                break;
            }
            self.stmt(stmt, span);
            if matches!(stmt, Stmt::Failure | Stmt::Success) {
                reachable = false;
            }
        }
    }

    fn use_word(&mut self, w: &Word) {
        if self.dynamic_defs {
            return;
        }
        for s in w.segs() {
            if let Seg::Var(v) = s {
                if !self.defined.contains(v.as_str()) && self.reported_undef.insert(v.to_string()) {
                    self.diags.push(Diagnostic {
                        rule: "use-before-assign",
                        severity: Severity::Warning,
                        span: w.span(),
                        message: format!(
                            "`${{{v}}}` is never assigned before this use and expands to \
                             the empty string"
                        ),
                        suggestion: Some(format!(
                            "assign `{v}=` or capture `-> {v}` first; if the harness \
                             injects it, declare `# lint: define {v}`"
                        )),
                    });
                }
            }
        }
    }

    /// A capture or assignment of `name`; flags it if nothing in the
    /// whole script ever reads it (captures only — assignments of
    /// unused constants are conventional).
    fn define(&mut self, name: &str) {
        self.defined.insert(name.to_string());
    }

    fn capture(&mut self, target: &Word, span: Span) {
        match target.as_lit() {
            Some(name) => {
                if !self.all_uses.contains(name) {
                    let at = if target.span().is_known() {
                        target.span()
                    } else {
                        span
                    };
                    self.diags.push(Diagnostic {
                        rule: "unused-capture",
                        severity: Severity::Info,
                        span: at,
                        message: format!(
                            "output captured into `{name}` is never read anywhere in the \
                             script"
                        ),
                        suggestion: Some(format!(
                            "drop the capture, or read `${{{name}}}` where the output \
                             matters"
                        )),
                    });
                }
                self.define(name);
            }
            None => self.dynamic_defs = true,
        }
    }

    fn stmt(&mut self, stmt: &Stmt, span: Span) {
        match stmt {
            Stmt::Command(c) => {
                for w in &c.words {
                    self.use_word(w);
                }
                // A call to a known function may bind that function's
                // captures outward (the body runs in the caller's env).
                if let Some(name) = c.words.first().and_then(|w| w.as_lit()) {
                    if let Some(binds) = self.funcs.get(name).cloned() {
                        self.defined.extend(binds);
                    }
                }
                for r in &c.redirs {
                    match r {
                        Redir::Out {
                            to, append, target, ..
                        } => {
                            self.use_word(target);
                            match to {
                                RedirTarget::Variable => {
                                    if *append {
                                        // Appending to a never-set
                                        // variable starts from empty —
                                        // legal, so only record the def.
                                        if let Some(n) = target.as_lit() {
                                            self.define(n);
                                        } else {
                                            self.dynamic_defs = true;
                                        }
                                    } else {
                                        self.capture(target, span);
                                    }
                                }
                                RedirTarget::File => {}
                            }
                        }
                        Redir::In { from, source } => {
                            self.use_word(source);
                            if *from == RedirTarget::Variable {
                                if let Some(n) = source.as_lit() {
                                    if !self.dynamic_defs
                                        && !self.defined.contains(n)
                                        && self.reported_undef.insert(n.to_string())
                                    {
                                        self.diags.push(Diagnostic {
                                            rule: "use-before-assign",
                                            severity: Severity::Warning,
                                            span: if source.span().is_known() {
                                                source.span()
                                            } else {
                                                span
                                            },
                                            message: format!(
                                                "`-< {n}` reads a variable that is never \
                                                 assigned before this point"
                                            ),
                                            suggestion: Some(format!(
                                                "assign or capture `{n}` first"
                                            )),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Stmt::Assign { var, value } => {
                self.use_word(value);
                self.define(var);
            }
            Stmt::Try { body, catch, .. } => {
                // May-defined union: the body ran if the try succeeded,
                // the catch ran if it exhausted.
                self.block(body);
                if let Some(c) = catch {
                    self.block(c);
                }
            }
            Stmt::ForAny { var, values, body } => {
                for v in values {
                    self.use_word(v);
                }
                // The winning alternative's bindings (including the loop
                // variable) survive the loop; keep the union.
                self.defined.insert(var.clone());
                self.block(body);
            }
            Stmt::ForAll { var, values, body } => {
                for v in values {
                    self.use_word(v);
                }
                // Branch-local envs are discarded at the join: bindings
                // made inside the body do NOT survive.
                let before = self.defined.clone();
                self.defined.insert(var.clone());
                self.block(body);
                self.defined = before;
            }
            Stmt::If { cond, then, els } => {
                self.use_word(&cond.lhs);
                self.use_word(&cond.rhs);
                self.block(then);
                if let Some(e) = els {
                    self.block(e);
                }
            }
            Stmt::Function { name, body } => {
                // Positional parameters are bound by the caller.
                let before = self.defined.clone();
                for p in ["0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "*"] {
                    self.defined.insert(p.to_string());
                }
                self.block(body);
                // Bindings the body makes belong to whichever env the
                // call runs in; remember them for call sites and keep
                // them may-defined from here on.
                let binds: HashSet<String> = self
                    .defined
                    .difference(&before)
                    .filter(|n| {
                        !matches!(
                            n.as_str(),
                            "0" | "1" | "2" | "3" | "4" | "5" | "6" | "7" | "8" | "9" | "*"
                        )
                    })
                    .cloned()
                    .collect();
                self.funcs.insert(name.clone(), binds.clone());
                self.defined = before;
                self.defined.extend(binds);
                self.define(name);
            }
            Stmt::Failure | Stmt::Success => {}
        }
    }
}
