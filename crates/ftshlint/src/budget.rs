//! Worst-case retry-budget envelopes.
//!
//! The envelope of a statement is a supremum on the wall-clock time the
//! *control structure itself* can consume: backoff delays between
//! attempts and deadline-bounded regions. External commands are charged
//! zero — the analysis bounds the overhead a retry discipline adds, not
//! the work being retried — so a time-limited `try` contributes its
//! deadline (the VM kills at the deadline regardless of what the body
//! does), while an attempt-limited `try` contributes its worst-case
//! backoff total plus `n` bodies.
//!
//! The backoff arithmetic follows §4 of the paper: base delay 1 s,
//! doubled per consecutive failure, capped at 1 h, then multiplied by a
//! random spreading factor drawn from [1, 2). The supremum takes the
//! jitter at its (open) upper edge, so the bound is tight but not
//! attained. [`Dur::MAX`] is the "unbounded" sentinel and prints as
//! `forever`.

use ftsh::{Script, Stmt};
use retry::Dur;
use std::collections::HashMap;

/// The paper's base delay (1 s).
pub const BASE: Dur = Dur::from_secs(1);
/// The paper's delay cap (1 h).
pub const CAP: Dur = Dur::from_hours(1);
/// Open upper edge of the paper's random spreading factor [1, 2).
pub const JITTER_HI: f64 = 2.0;

/// Supremum of the total exponential-backoff delay across `delays`
/// consecutive failures under the paper's policy: the k-th delay is
/// `min(base * 2^(k-1), cap) * jitter`, `jitter < 2`.
///
/// ```
/// use ftshlint::budget::worst_backoff_total;
/// use retry::Dur;
///
/// // try 5 times: four delays of sup 2,4,8,16 s.
/// assert_eq!(worst_backoff_total(4), Dur::from_secs(30));
/// ```
pub fn worst_backoff_total(delays: u32) -> Dur {
    worst_backoff_total_with(BASE, CAP, JITTER_HI, delays)
}

/// [`worst_backoff_total`] under an explicit doubling policy.
pub fn worst_backoff_total_with(base: Dur, cap: Dur, jitter_hi: f64, delays: u32) -> Dur {
    let cap_us = cap.as_micros() as u128;
    let mut d = base.as_micros() as u128;
    let mut sum: u128 = 0;
    let mut k: u64 = 0;
    let m = u64::from(delays);
    // Doubling reaches the cap within ~64 iterations; the rest of the
    // delays sit at the cap and are charged in closed form.
    while k < m && d < cap_us {
        sum += d;
        d *= 2;
        k += 1;
    }
    sum += u128::from(m - k) * cap_us;
    let jittered = (sum as f64) * jitter_hi;
    if jittered >= u64::MAX as f64 {
        Dur::MAX
    } else {
        Dur::from_micros(jittered.round() as u64)
    }
}

fn sat_mul(d: Dur, n: u64) -> Dur {
    if d == Dur::MAX {
        return Dur::MAX;
    }
    Dur::from_micros(d.as_micros().saturating_mul(n))
}

fn sat_add(a: Dur, b: Dur) -> Dur {
    if a == Dur::MAX || b == Dur::MAX {
        return Dur::MAX;
    }
    Dur::from_micros(a.as_micros().saturating_add(b.as_micros()))
}

/// Envelope analysis over one script. Function bodies are charged at
/// their call sites (by literal argv0 lookup, definitions-in-order);
/// unknown commands are external work and cost zero.
pub struct Envelope {
    funcs: HashMap<String, Dur>,
}

impl Envelope {
    /// Worst-case retry envelope of a whole script.
    pub fn of_script(script: &Script) -> Dur {
        let mut e = Envelope {
            funcs: HashMap::new(),
        };
        e.block(&script.stmts)
    }

    fn block(&mut self, stmts: &[Stmt]) -> Dur {
        let mut total = Dur::ZERO;
        for s in stmts {
            total = sat_add(total, self.stmt(s));
        }
        total
    }

    fn stmt(&mut self, stmt: &Stmt) -> Dur {
        match stmt {
            Stmt::Command(c) => c
                .words
                .first()
                .and_then(|w| w.as_lit())
                .and_then(|name| self.funcs.get(name).copied())
                .unwrap_or(Dur::ZERO),
            Stmt::Assign { .. } | Stmt::Failure | Stmt::Success => Dur::ZERO,
            Stmt::Function { name, body } => {
                // Self/forward recursion resolves to zero: by the time
                // the body is costed, the name is not yet in the map.
                let cost = self.block(body);
                self.funcs.insert(name.clone(), cost);
                Dur::ZERO
            }
            Stmt::If { then, els, .. } => {
                let t = self.block(then);
                let e = els.as_ref().map(|b| self.block(b)).unwrap_or(Dur::ZERO);
                t.max(e)
            }
            Stmt::ForAny { values, body, .. } => {
                // Sequential worst case: every alternative is attempted.
                sat_mul(self.block(body), values.len() as u64)
            }
            Stmt::ForAll { body, .. } => {
                // Parallel branches share the same body; the slowest
                // branch bounds the join.
                self.block(body)
            }
            Stmt::Try { spec, body, catch } => {
                let body_env = self.block(body);
                let by_attempts = match spec.attempts {
                    Some(n) if body_env != Dur::MAX => {
                        let attempts = sat_mul(body_env, u64::from(n));
                        let delays = n.saturating_sub(1);
                        let waits = match spec.every {
                            Some(e) => sat_mul(e, u64::from(delays)),
                            None => worst_backoff_total(delays),
                        };
                        sat_add(attempts, waits)
                    }
                    _ => Dur::MAX,
                };
                let per_try = match spec.time {
                    // The deadline kills whatever is left, so it bounds
                    // the region even when the attempt bound does not.
                    Some(t) => t.min(by_attempts),
                    None => by_attempts,
                };
                let catch_env = catch.as_ref().map(|b| self.block(b)).unwrap_or(Dur::ZERO);
                sat_add(per_try, catch_env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsh::parse;

    fn envelope(src: &str) -> Dur {
        Envelope::of_script(&parse(src).unwrap())
    }

    /// The paper's policy: delays sup 2*min(2^(k-1), 3600) seconds.
    #[test]
    fn backoff_totals_match_paper_policy() {
        assert_eq!(worst_backoff_total(0), Dur::ZERO);
        // One delay: base 1 s, jitter sup 2.
        assert_eq!(worst_backoff_total(1), Dur::from_secs(2));
        // try 5 times: 2*(1+2+4+8) = 30 s.
        assert_eq!(worst_backoff_total(4), Dur::from_secs(30));
        // try 10 times: 2*(2^9 - 1) = 1022 s.
        assert_eq!(worst_backoff_total(9), Dur::from_secs(1022));
        // try 13 times: 2*(2^12 - 1) = 8190 s.
        assert_eq!(worst_backoff_total(12), Dur::from_secs(8190));
        // try 15 times: the 13th and 14th delays hit the 1 h cap:
        // 2*4095 + 2*2*3600 = 22590 s.
        assert_eq!(worst_backoff_total(14), Dur::from_secs(22_590));
    }

    #[test]
    fn capped_tail_is_charged_in_closed_form() {
        // 1000 delays: 12 uncapped (sum 4095 s), 988 at the cap.
        let want = Dur::from_secs(2 * (4095 + 988 * 3600));
        assert_eq!(worst_backoff_total(1000), want);
        // Absurd counts saturate instead of overflowing.
        assert_eq!(worst_backoff_total(u32::MAX), Dur::MAX);
    }

    #[test]
    fn attempt_limited_try_sums_bodies_and_backoff() {
        assert_eq!(envelope("try 5 times\n  work\nend\n"), Dur::from_secs(30));
        assert_eq!(
            envelope("try 10 times\n  work\nend\n"),
            Dur::from_secs(1022)
        );
        assert_eq!(
            envelope("try 15 times\n  work\nend\n"),
            Dur::from_secs(22_590)
        );
    }

    #[test]
    fn every_overrides_backoff() {
        assert_eq!(
            envelope("try 4 times every 10 seconds\n  work\nend\n"),
            Dur::from_secs(30)
        );
    }

    #[test]
    fn deadline_bounds_the_region() {
        assert_eq!(
            envelope("try for 5 minutes\n  work\nend\n"),
            Dur::from_mins(5)
        );
        // The attempt bound is tighter than the deadline here.
        assert_eq!(
            envelope("try for 1 hour or 5 times\n  work\nend\n"),
            Dur::from_secs(30)
        );
        // ... and the deadline is tighter than 10 attempts' backoff.
        assert_eq!(
            envelope("try for 2 minutes or 10 times\n  work\nend\n"),
            Dur::from_mins(2)
        );
    }

    #[test]
    fn unbounded_try_is_forever() {
        assert_eq!(envelope("try\n  work\nend\n"), Dur::MAX);
        // An enclosing deadline restores the bound.
        assert_eq!(
            envelope("try for 10 minutes\n  try\n    work\n  end\nend\n"),
            Dur::from_mins(10)
        );
    }

    #[test]
    fn structure_composes() {
        // forany multiplies by alternatives; catch adds.
        assert_eq!(
            envelope("forany h in a b\n  try 5 times\n    f ${h}\n  end\nend\n"),
            Dur::from_secs(60)
        );
        assert_eq!(
            envelope("try 5 times\n  work\ncatch\n  try 5 times\n    cleanup\n  end\nend\n"),
            Dur::from_secs(60)
        );
        // forall joins on the slowest branch, not the sum.
        assert_eq!(
            envelope("forall h in a b c\n  try 5 times\n    f ${h}\n  end\nend\n"),
            Dur::from_secs(30)
        );
        // if takes the worse arm.
        assert_eq!(
            envelope(
                "if ${x} .lt. 1\n  try 5 times\n    a\n  end\nelse\n  try 10 times\n    b\n  end\nend\n"
            ),
            Dur::from_secs(1022)
        );
    }

    #[test]
    fn function_bodies_charge_at_call_sites() {
        let src = "function f\n  try 5 times\n    work\n  end\nend\nf\nf\n";
        assert_eq!(envelope(src), Dur::from_secs(60));
        // Never-called functions cost nothing.
        let src = "function f\n  try 5 times\n    work\n  end\nend\ntrue\n";
        assert_eq!(envelope(src), Dur::ZERO);
    }

    #[test]
    fn nested_attempts_multiply() {
        // Outer 3 attempts of (2 inner attempts + 2 s inner backoff) +
        // outer backoff 2*(1+2) = 6: 3*2 + 6 = inner bodies are zero,
        // so 3*(2 s) + 6 s = 12 s.
        assert_eq!(
            envelope("try 3 times\n  try 2 times\n    work\n  end\nend\n"),
            Dur::from_secs(12)
        );
    }
}
