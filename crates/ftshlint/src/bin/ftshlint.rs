//! `ftshlint` — lint ftsh scripts from the command line.
//!
//! ```text
//! ftshlint [options] <script.ftsh>...
//!
//!   --format human|json   human (default): rustc-style carets.
//!                         json: one JSON object per diagnostic line.
//!   --max-budget <dur>    reject scripts whose worst-case retry
//!                         envelope exceeds <dur> ('90s', '10m', '2h',
//!                         '3 hours').
//!   --define <name>       pre-bind a variable for the dataflow rules
//!                         (repeatable; same effect as an in-file
//!                         '# lint: define <name>').
//!   --allow <rule>        suppress a rule id everywhere (repeatable).
//!   --report <path.md>    also write a markdown classification report.
//!   --rules               list the rules and exit.
//!
//! Exit status: 0 all scripts clean, 1 at least one finding,
//! 2 usage, I/O, or parse error.
//! ```

use ftshlint::{lint, markdown_report, Options, Report, RULES};
use retry::{parse_duration, Dur};
use std::process::ExitCode;

struct Cli {
    format: Format,
    opts: Options,
    report: Option<String>,
    files: Vec<String>,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn usage() -> String {
    "usage: ftshlint [--format human|json] [--max-budget <dur>] [--define <name>]... \
     [--allow <rule>]... [--report <path.md>] [--rules] <script.ftsh>..."
        .to_string()
}

/// Parse `'90s'`, `'10 m'`, `'2 hours'`: digits, then a unit word.
fn parse_dur_arg(s: &str) -> Option<Dur> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit())?;
    let amount: u64 = s[..split].parse().ok()?;
    parse_duration(amount, s[split..].trim())
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        format: Format::Human,
        opts: Options::default(),
        report: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--format" => {
                cli.format = match val("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}'\n{}", usage())),
                }
            }
            "--max-budget" => {
                let v = val("--max-budget")?;
                cli.opts.max_budget = Some(parse_dur_arg(&v).ok_or_else(|| {
                    format!("cannot parse duration '{v}' (try '90s', '2 hours')")
                })?);
            }
            "--define" => cli.opts.defines.push(val("--define")?),
            "--allow" => cli.opts.allow.push(val("--allow")?),
            "--report" => cli.report = Some(val("--report")?),
            "--rules" => {
                println!("{:<28} {:<8} {:<6} summary", "id", "severity", "paper");
                for r in RULES {
                    println!(
                        "{:<28} {:<8} {:<6} {}",
                        r.id, r.severity, r.paper, r.summary
                    );
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            f if f.starts_with('-') => return Err(format!("unknown flag '{f}'\n{}", usage())),
            f => cli.files.push(f.to_string()),
        }
    }
    if cli.files.is_empty() {
        return Err(usage());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ftshlint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut entries: Vec<(String, String, Report)> = Vec::new();
    let mut findings = 0usize;
    for file in &cli.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ftshlint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = match lint(&src, &cli.opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ftshlint: {file}: {}", e.render(&src));
                return ExitCode::from(2);
            }
        };
        for d in &report.diagnostics {
            match cli.format {
                Format::Human => println!("{}\n", d.render(file, &src)),
                Format::Json => println!("{}", d.to_json(file, &src)),
            }
        }
        findings += report.diagnostics.len();
        entries.push((file.clone(), src, report));
    }

    if cli.format == Format::Human {
        let suppressed: usize = entries.iter().map(|(_, _, r)| r.suppressed).sum();
        eprintln!(
            "ftshlint: {} script(s), {} finding(s), {} suppressed",
            entries.len(),
            findings,
            suppressed
        );
    }

    if let Some(path) = &cli.report {
        if let Err(e) = std::fs::write(path, markdown_report(&entries)) {
            eprintln!("ftshlint: cannot write report {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if findings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
