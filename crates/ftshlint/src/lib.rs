//! # ftshlint — a discipline-aware static analyzer for ftsh scripts
//!
//! The paper argues that the difference between a well-behaved grid
//! client and a destructive one is *discipline*: bounded retries,
//! exponential backoff with room to breathe, sensing the medium before
//! committing work, and transactional I/O so killed attempts leave no
//! debris. All of those properties are visible in the AST before a
//! script ever runs — this crate checks them statically.
//!
//! [`lint`] parses a script and produces a [`Report`]: structured
//! [`Diagnostic`]s (rule id, severity, byte span, message, suggestion),
//! a [`Discipline`] classification (Ethernet / Aloha / Fixed /
//! straight-line, after §5's three client personalities), and the
//! worst-case retry envelope of the whole script (see [`budget`]).
//!
//! ## Rules
//!
//! | id | severity | checks |
//! |----|----------|--------|
//! | `unbounded-try` | warning | a `try` with neither time nor attempt limit |
//! | `no-carrier-sense` | warning | a deadline-less retry loop that consults nothing before retrying |
//! | `dead-deadline` | warning | an inner `for` budget at/above the enclosing one, or zero |
//! | `retry-without-backoff-room` | warning | `every 0`, or budgets too small for any backoff delay |
//! | `non-transactional-io` | warning | file redirection inside a retry loop |
//! | `use-before-assign` | warning | `${v}` read on a path where `v` was never bound |
//! | `unused-capture` | info | `-> v` whose value no statement ever reads |
//! | `unreachable-code` | warning | statements after `failure`/`success` in a group |
//! | `single-alternative` | info | `forany`/`forall` over one value |
//! | `budget-exceeded` | error | worst-case envelope above `--max-budget` |
//!
//! ## Annotations
//!
//! Scripts communicate intent through `# lint:` comments, anywhere in
//! the file:
//!
//! ```text
//! # lint: define shimdir        -- the harness injects ${shimdir}
//! # lint: allow unused-capture  -- captures are conformance observables
//! ```
//!
//! `allow` suppresses a rule for the whole file; `define` pre-binds
//! variable names for the dataflow rules. Suppressed findings are
//! counted in [`Report::suppressed`], never silently dropped.

#![warn(missing_docs)]

pub mod budget;
mod rules;

use ftsh::{line_col, parse, ParseError, Script, Span};
use retry::Dur;
use std::fmt;
use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; the script behaves as written.
    Info,
    /// The script probably misbehaves under faults or wastes the grid.
    Warning,
    /// The script violates an explicit bound (e.g. `--max-budget`).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Static description of one rule, for `--rules` listings and docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable kebab-case identifier.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// The paper section the rule is grounded in.
    pub paper: &'static str,
}

/// Every rule this analyzer knows, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "unbounded-try",
        severity: Severity::Warning,
        summary: "a `try` with neither a time nor an attempt limit may retry forever",
        paper: "§4",
    },
    RuleInfo {
        id: "no-carrier-sense",
        severity: Severity::Warning,
        summary: "a deadline-less retry loop that consults no condition before retrying",
        paper: "§5–6",
    },
    RuleInfo {
        id: "dead-deadline",
        severity: Severity::Warning,
        summary: "an inner time budget at or above the enclosing one can never fire",
        paper: "§4",
    },
    RuleInfo {
        id: "retry-without-backoff-room",
        severity: Severity::Warning,
        summary: "zero or unfittable retry intervals degenerate to the Fixed hammer",
        paper: "§5",
    },
    RuleInfo {
        id: "non-transactional-io",
        severity: Severity::Warning,
        summary: "file redirection inside a retry loop leaves partial output when killed",
        paper: "§3",
    },
    RuleInfo {
        id: "use-before-assign",
        severity: Severity::Warning,
        summary: "a variable read before any binding expands to the empty string",
        paper: "§3",
    },
    RuleInfo {
        id: "unused-capture",
        severity: Severity::Info,
        summary: "a `->` capture whose value nothing reads",
        paper: "§3",
    },
    RuleInfo {
        id: "unreachable-code",
        severity: Severity::Warning,
        summary: "statements after `failure`/`success` never run",
        paper: "§4",
    },
    RuleInfo {
        id: "single-alternative",
        severity: Severity::Info,
        summary: "`forany`/`forall` over one value adds no redundancy or parallelism",
        paper: "§4",
    },
    RuleInfo {
        id: "budget-exceeded",
        severity: Severity::Error,
        summary: "the worst-case retry envelope exceeds the configured bound",
        paper: "§4",
    },
];

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Severity of this occurrence.
    pub severity: Severity,
    /// Byte span of the offending construct in the source.
    pub span: Span,
    /// Human-readable description of what is wrong here.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete idea.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Render rustc-style against the source, with a caret excerpt:
    ///
    /// ```text
    /// warning[unbounded-try]: this `try` has no time or attempt limit...
    ///  --> script.ftsh:3:1
    ///   3 | try
    ///     | ^^^
    ///   = suggestion: bound it: `try for <time>`, ...
    /// ```
    pub fn render(&self, file: &str, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        let mut out = format!(
            "{sev}[{rule}]: {msg}\n --> {file}:{line}:{col}",
            sev = self.severity,
            rule = self.rule,
            msg = self.message,
        );
        if self.span.is_known() {
            let text = src.lines().nth(line as usize - 1).unwrap_or("");
            let width = (self.span.end.saturating_sub(self.span.start) as usize)
                .min(text.len().saturating_sub(col as usize - 1))
                .max(1);
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = write!(
                out,
                "\n  {gutter} | {text}\n  {pad} | {space}{carets}",
                space = " ".repeat(col as usize - 1),
                carets = "^".repeat(width),
            );
        }
        if let Some(s) = &self.suggestion {
            let _ = write!(out, "\n  = suggestion: {s}");
        }
        out
    }

    /// Render as one JSON object (JSON-lines friendly; no trailing
    /// newline). `line`/`col` are resolved against `src` for consumers
    /// that do not want to re-derive them from the byte span.
    pub fn to_json(&self, file: &str, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        format!(
            "{{\"file\":{file},\"rule\":{rule},\"severity\":{sev},\
             \"span\":{{\"start\":{start},\"end\":{end}}},\
             \"line\":{line},\"col\":{col},\"message\":{msg},\"suggestion\":{sugg}}}",
            file = json_str(file),
            rule = json_str(self.rule),
            sev = json_str(&self.severity.to_string()),
            start = self.span.start,
            end = self.span.end,
            msg = json_str(&self.message),
            sugg = match &self.suggestion {
                Some(s) => json_str(s),
                None => "null".to_string(),
            },
        )
    }
}

/// Minimal JSON string escaping (the diagnostics vocabulary is ASCII).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The retry personality a script exhibits, after the three clients of
/// §5. Classification is structural and ignores `# lint: allow`
/// suppressions: an annotated Aloha script is still Aloha.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Bounded, backed-off retries (possibly with carrier sensing).
    Ethernet,
    /// Retries without sensing: unbounded or blind loops.
    Aloha,
    /// Zero-delay or no-room retries: the aggressive repeater.
    Fixed,
    /// No retry structure at all.
    StraightLine,
}

impl fmt::Display for Discipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Discipline::Ethernet => "Ethernet",
            Discipline::Aloha => "Aloha",
            Discipline::Fixed => "Fixed",
            Discipline::StraightLine => "straight-line",
        })
    }
}

/// Analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Reject scripts whose worst-case retry envelope exceeds this.
    pub max_budget: Option<Dur>,
    /// Variable names bound by the environment before the script runs
    /// (merged with in-file `# lint: define` annotations).
    pub defines: Vec<String>,
    /// Rule ids suppressed for every file (merged with in-file
    /// `# lint: allow` annotations).
    pub allow: Vec<String>,
}

/// Everything the analyzer learned about one script.
#[derive(Clone, Debug)]
pub struct Report {
    /// Findings that survived suppression, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings `# lint: allow` / `--allow` suppressed.
    pub suppressed: usize,
    /// Structural retry-discipline classification.
    pub discipline: Discipline,
    /// Worst-case retry envelope ([`Dur::MAX`] = unbounded, prints as
    /// `forever`).
    pub envelope: Dur,
}

impl Report {
    /// True when nothing (unsuppressed) was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// In-file `# lint:` annotations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Annotations {
    /// Rule ids from `# lint: allow <id>...` lines.
    pub allow: Vec<String>,
    /// Variable names from `# lint: define <name>...` lines.
    pub defines: Vec<String>,
}

/// Scan a script's comment lines for `# lint:` directives. The scan is
/// textual (a `# lint:` inside a quoted word would match too); that
/// looseness is harmless because directives only widen what is allowed.
pub fn annotations(src: &str) -> Annotations {
    let mut a = Annotations::default();
    for line in src.lines() {
        let Some(at) = line.find("# lint:") else {
            continue;
        };
        let rest = line[at + "# lint:".len()..].trim();
        let mut words = rest.split_whitespace();
        match words.next() {
            Some("allow") => a.allow.extend(words.map(str::to_string)),
            Some("define") => a.defines.extend(words.map(str::to_string)),
            _ => {}
        }
    }
    a
}

/// Lint already-parsed source. The `src` must be the exact text the
/// script was parsed from, so spans resolve.
pub fn lint_script(script: &Script, src: &str, opts: &Options) -> Report {
    let notes = annotations(src);
    let mut defines: Vec<String> = opts.defines.clone();
    defines.extend(notes.defines);

    let mut diags = Vec::new();
    let mut disc = rules::DisciplineWalker::new(&mut diags);
    disc.block(&script.stmts);
    let (saw_try, saw_aloha, saw_fixed) = (disc.saw_try, disc.saw_aloha, disc.saw_fixed);

    let mut flow = rules::DataflowWalker::new(&mut diags, &defines, &script.stmts);
    flow.block(&script.stmts);

    let envelope = budget::Envelope::of_script(script);
    if let Some(max) = opts.max_budget {
        if envelope > max {
            let span = script.stmts.span_of(0);
            let shown = if envelope == Dur::MAX {
                "unbounded".to_string()
            } else {
                envelope.to_string()
            };
            diags.push(Diagnostic {
                rule: "budget-exceeded",
                severity: Severity::Error,
                span,
                message: format!(
                    "worst-case retry envelope is {shown}, above the configured bound of {max}"
                ),
                suggestion: Some(
                    "tighten `try` time/attempt limits until the envelope fits the bound"
                        .to_string(),
                ),
            });
        }
    }

    let discipline = if saw_fixed {
        Discipline::Fixed
    } else if saw_aloha {
        Discipline::Aloha
    } else if saw_try {
        Discipline::Ethernet
    } else {
        Discipline::StraightLine
    };

    let mut allowed: Vec<&str> = notes.allow.iter().map(String::as_str).collect();
    allowed.extend(opts.allow.iter().map(String::as_str));
    let before = diags.len();
    diags.retain(|d| !allowed.contains(&d.rule));
    let suppressed = before - diags.len();
    diags.sort_by_key(|d| (d.span.start, d.span.end, d.rule));

    Report {
        diagnostics: diags,
        suppressed,
        discipline,
        envelope,
    }
}

/// Parse and lint one script source.
pub fn lint(src: &str, opts: &Options) -> Result<Report, ParseError> {
    let script = parse(src)?;
    Ok(lint_script(&script, src, opts))
}

/// A markdown report over a batch of linted scripts: the per-script
/// classification table §5 of the paper would ask for, then the
/// surviving findings. `entries` pairs each script's display name with
/// its source and report.
pub fn markdown_report(entries: &[(String, String, Report)]) -> String {
    let mut out = String::new();
    out.push_str("# ftsh static analysis\n\n");
    out.push_str(
        "Discipline is structural (suppressions do not reclassify): \
         **Fixed** retries with no backoff room, **Aloha** retries without \
         sensing, **Ethernet** retries bounded and backed off, \
         **straight-line** never retries. The envelope is the worst-case \
         wall-clock the retry structure itself can spend (backoff cap \
         included); `forever` means unbounded.\n\n",
    );
    out.push_str("| script | discipline | worst-case envelope | findings | suppressed |\n");
    out.push_str("|---|---|---|---:|---:|\n");
    for (name, _, r) in entries {
        let env = if r.envelope == Dur::MAX {
            "forever".to_string()
        } else {
            r.envelope.to_string()
        };
        let _ = writeln!(
            out,
            "| `{name}` | {} | {env} | {} | {} |",
            r.discipline,
            r.diagnostics.len(),
            r.suppressed,
        );
    }
    let mut any = false;
    for (name, src, r) in entries {
        if r.diagnostics.is_empty() {
            continue;
        }
        if !any {
            out.push_str("\n## Findings\n");
            any = true;
        }
        let _ = write!(out, "\n### `{name}`\n\n");
        for d in &r.diagnostics {
            let (line, col) = line_col(src, d.span.start);
            let _ = writeln!(
                out,
                "- **{}** `{}` at {line}:{col} — {}",
                d.severity, d.rule, d.message
            );
        }
    }
    if !any {
        out.push_str("\nNo findings outside suppressions.\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Report {
        lint(src, &Options::default()).expect("parses")
    }

    fn rules_of(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.rule).collect()
    }

    // -- discipline rules ---------------------------------------------

    #[test]
    fn unbounded_try_fires_and_is_spanned() {
        let src = "try\n  submit job\nend\n";
        let r = run(src);
        assert!(rules_of(&r).contains(&"unbounded-try"), "{r:?}");
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "unbounded-try")
            .unwrap();
        assert!(d.span.is_known());
        assert_eq!(&src[d.span.start as usize..d.span.end as usize], "try");
    }

    #[test]
    fn bounded_try_is_not_unbounded() {
        let r = run("try for 5 minutes\n  submit job\nend\n");
        assert!(!rules_of(&r).contains(&"unbounded-try"));
        let r = run("try 3 times\n  submit job\nend\n");
        assert!(!rules_of(&r).contains(&"unbounded-try"));
    }

    #[test]
    fn aloha_shape_lacks_carrier_sense() {
        let r = run("try\n  submit job\nend\n");
        assert!(rules_of(&r).contains(&"no-carrier-sense"));
        assert_eq!(r.discipline, Discipline::Aloha);
    }

    #[test]
    fn deadline_or_condition_counts_as_sensing() {
        // A time budget senses elapsed time.
        let r = run("try for 1 hour\n  submit job\nend\n");
        assert!(!rules_of(&r).contains(&"no-carrier-sense"));
        // An `if` probe inside the loop senses the medium.
        let src = "queue -> n\ntry 100 times\n  queue -> n\n  if ${n} .lt. 1000\n    submit job\n  else\n    failure\n  end\nend\n";
        let r = run(src);
        assert!(!rules_of(&r).contains(&"no-carrier-sense"), "{r:?}");
        assert_eq!(r.discipline, Discipline::Ethernet);
    }

    #[test]
    fn dead_deadline_on_nested_tries() {
        let src = "try for 5 minutes\n  try for 10 minutes\n    work\n  end\nend\n";
        let r = run(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "dead-deadline")
            .expect("fires");
        // The span points at the *inner* header.
        assert_eq!(
            &src[d.span.start as usize..d.span.end as usize],
            "try for 10 minutes"
        );
        // Inner below outer is fine.
        let r = run("try for 10 minutes\n  try for 5 minutes\n    work\n  end\nend\n");
        assert!(!rules_of(&r).contains(&"dead-deadline"));
        // Equal budgets are dead too (the outer kills first or ties).
        let r = run("try for 5 minutes\n  try for 5 minutes\n    work\n  end\nend\n");
        assert!(rules_of(&r).contains(&"dead-deadline"));
    }

    #[test]
    fn dead_deadline_respects_intervening_attempt_only_try() {
        // The attempt-only middle layer does not reset the outer clock.
        let src =
            "try for 5 minutes\n  try 3 times\n    try for 20 minutes\n      work\n    end\n  end\nend\n";
        let r = run(src);
        assert!(rules_of(&r).contains(&"dead-deadline"), "{r:?}");
    }

    #[test]
    fn zero_budget_is_dead() {
        let r = run("try for 0 seconds or 2 times\n  work\nend\n");
        assert!(rules_of(&r).contains(&"dead-deadline"));
    }

    #[test]
    fn every_zero_is_the_fixed_hammer() {
        let r = run("try 100 times every 0 seconds\n  hammer\nend\n");
        assert!(rules_of(&r).contains(&"retry-without-backoff-room"));
        assert_eq!(r.discipline, Discipline::Fixed);
        // A nonzero interval is a legitimate constant-backoff retry.
        let r = run("try for 10 seconds or 3 times every 10 ms\n  work\nend\n");
        assert!(!rules_of(&r).contains(&"retry-without-backoff-room"));
    }

    #[test]
    fn budgets_too_small_for_backoff() {
        // 1 s budget cannot fit the 1 s base delay: no retry ever runs.
        let r = run("try for 1 seconds\n  work\nend\n");
        assert!(rules_of(&r).contains(&"retry-without-backoff-room"));
        // ... unless the single attempt is explicit (deadline enforcer).
        let r = run("try for 300 ms or 1 times\n  work\nend\n");
        assert!(!rules_of(&r).contains(&"retry-without-backoff-room"));
        // A fixed interval wider than the whole budget can never fire.
        let r = run("try for 5 seconds or 9 times every 10 seconds\n  work\nend\n");
        assert!(rules_of(&r).contains(&"retry-without-backoff-room"));
    }

    #[test]
    fn file_redirect_inside_retry_is_non_transactional() {
        let src = "try for 5 minutes\n  fetch url > out.dat\nend\n";
        let r = run(src);
        assert!(rules_of(&r).contains(&"non-transactional-io"), "{r:?}");
        // Variable captures are the transactional form.
        let r = run("try for 5 minutes\n  fetch url -> out\nend\nuse ${out}\n");
        assert!(!rules_of(&r).contains(&"non-transactional-io"));
        // Outside any retry loop a file redirect is ordinary shell.
        let r = run("fetch url > out.dat\n");
        assert!(!rules_of(&r).contains(&"non-transactional-io"));
    }

    // -- dataflow rules -----------------------------------------------

    #[test]
    fn use_before_assign_and_define_annotation() {
        let r = run("echo ${missing}\n");
        assert!(rules_of(&r).contains(&"use-before-assign"));
        let r = run("# lint: define missing\necho ${missing}\n");
        assert!(!rules_of(&r).contains(&"use-before-assign"));
        let r = run("missing=here\necho ${missing}\n");
        assert!(!rules_of(&r).contains(&"use-before-assign"));
    }

    #[test]
    fn forany_bindings_survive_forall_bindings_do_not() {
        let r = run("forany h in a b\n  probe ${h} -> got\nend\necho ${h} ${got}\n");
        assert!(!rules_of(&r).contains(&"use-before-assign"), "{r:?}");
        let r = run("forall w in a b\n  probe ${w} -> got\nend\necho ${got}\n");
        assert!(rules_of(&r).contains(&"use-before-assign"), "{r:?}");
    }

    #[test]
    fn function_positionals_and_outward_bindings() {
        let src = "function fetch\n  probe ${1} -> payload\nend\nfetch gamma\necho ${payload}\n";
        let r = run(src);
        assert!(!rules_of(&r).contains(&"use-before-assign"), "{r:?}");
    }

    #[test]
    fn if_branches_are_may_defined() {
        let src = "if ${0} .lt. 1\n  x=a\nelse\n  y=b\nend\necho ${x} ${y}\n";
        let r = lint(
            src,
            &Options {
                defines: vec!["0".into()],
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!rules_of(&r).contains(&"use-before-assign"), "{r:?}");
    }

    #[test]
    fn unused_capture_fires_and_appends_count_as_reads() {
        let src = "echo hi -> msg\n";
        let r = run(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "unused-capture")
            .expect("fires");
        assert_eq!(&src[d.span.start as usize..d.span.end as usize], "msg");
        // Reading it anywhere silences the rule.
        let r = run("echo hi -> msg\necho ${msg}\n");
        assert!(!rules_of(&r).contains(&"unused-capture"));
        // `->>` reads the value it extends; `-<` reads it outright.
        let r = run("echo one -> log\necho two ->> log\n");
        assert!(!rules_of(&r).contains(&"unused-capture"), "{r:?}");
        let r = run("echo hi -> msg\ncat -< msg\n");
        assert!(!rules_of(&r).contains(&"unused-capture"));
    }

    #[test]
    fn unreachable_after_failure_and_success() {
        let src = "failure\necho never\n";
        let r = run(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "unreachable-code")
            .expect("fires");
        assert_eq!(
            &src[d.span.start as usize..d.span.end as usize],
            "echo never"
        );
        let r = run("try for 5 seconds or 1 times\n  failure\ncatch\n  success\nend\necho fine\n");
        assert!(!rules_of(&r).contains(&"unreachable-code"));
        let r = run("success\necho never\n");
        assert!(rules_of(&r).contains(&"unreachable-code"));
    }

    #[test]
    fn single_alternative_loops() {
        let r = run("forany h in only\n  probe ${h}\nend\n");
        assert!(rules_of(&r).contains(&"single-alternative"));
        let r = run("forall h in only\n  probe ${h}\nend\n");
        assert!(rules_of(&r).contains(&"single-alternative"));
        let r = run("forany h in a b\n  probe ${h}\nend\n");
        assert!(!rules_of(&r).contains(&"single-alternative"));
    }

    // -- budget rule --------------------------------------------------

    #[test]
    fn max_budget_rejects_wide_envelopes() {
        let opts = Options {
            max_budget: Some(Dur::from_mins(10)),
            ..Default::default()
        };
        // try 10 times: envelope 1022 s > 600 s.
        let r = lint("try 10 times\n  work\nend\n", &opts).unwrap();
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "budget-exceeded")
            .expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("1022s"), "{}", d.message);
        // try 5 times: 30 s fits.
        let r = lint("try 5 times\n  work\nend\n", &opts).unwrap();
        assert!(!rules_of(&r).contains(&"budget-exceeded"));
        // Unbounded scripts can never satisfy a bound.
        let r = lint("try\n  work\nend\n", &opts).unwrap();
        assert!(rules_of(&r).contains(&"budget-exceeded"));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == "budget-exceeded" && d.message.contains("unbounded")));
    }

    // -- report machinery ---------------------------------------------

    #[test]
    fn allow_annotation_suppresses_but_counts() {
        let src = "# lint: allow unused-capture\necho hi -> msg\n";
        let r = run(src);
        assert!(!rules_of(&r).contains(&"unused-capture"));
        assert_eq!(r.suppressed, 1);
        // Classification ignores suppression.
        let src = "# lint: allow unbounded-try no-carrier-sense\ntry\n  x\nend\n";
        let r = run(src);
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.suppressed, 2);
        assert_eq!(r.discipline, Discipline::Aloha);
    }

    #[test]
    fn classification_ladder() {
        assert_eq!(run("true\n").discipline, Discipline::StraightLine);
        assert_eq!(
            run("try for 1 hour\n  x\nend\n").discipline,
            Discipline::Ethernet
        );
        assert_eq!(run("try\n  x\nend\n").discipline, Discipline::Aloha);
        assert_eq!(
            run("try 5 times every 0 seconds\n  x\nend\n").discipline,
            Discipline::Fixed
        );
    }

    #[test]
    fn annotations_parse() {
        let a = annotations(
            "# lint: define shimdir host\nx=1\n# lint: allow unused-capture\n#lint: allow nope\n",
        );
        assert_eq!(a.defines, vec!["shimdir", "host"]);
        assert_eq!(a.allow, vec!["unused-capture"]);
    }

    #[test]
    fn json_output_escapes_and_locates() {
        let src = "echo hi -> msg\n";
        let r = run(src);
        let d = &r.diagnostics[0];
        let j = d.to_json("a \"b\".ftsh", src);
        assert!(j.contains("\"file\":\"a \\\"b\\\".ftsh\""), "{j}");
        assert!(j.contains("\"rule\":\"unused-capture\""), "{j}");
        assert!(j.contains("\"line\":1"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn human_output_has_caret_at_source_line() {
        let src = "good cmd\ntry\n  x\nend\n";
        let r = run(src);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "unbounded-try")
            .unwrap();
        let rendered = d.render("s.ftsh", src);
        assert!(rendered.contains("--> s.ftsh:2:1"), "{rendered}");
        assert!(rendered.contains("2 | try"), "{rendered}");
        assert!(rendered.contains("| ^^^"), "{rendered}");
    }

    #[test]
    fn every_diagnostic_span_resolves_to_its_line() {
        // Acceptance check: spans from a multi-finding script all point
        // at the expected source lines.
        let src = "echo hi -> msg\ntry\n  cp a b > log.txt\nend\necho ${ghost}\n";
        let r = run(src);
        assert!(!r.is_clean());
        for d in &r.diagnostics {
            assert!(d.span.is_known(), "{d:?}");
            let (line, _) = line_col(src, d.span.start);
            let text = src.lines().nth(line as usize - 1).unwrap();
            let frag = &src[d.span.start as usize..d.span.end as usize];
            assert!(
                text.contains(frag.lines().next().unwrap()),
                "span {frag:?} not on line {line}: {text:?}"
            );
        }
    }
}
