//! # ethernet-grid
//!
//! A reproduction of *"The Ethernet Approach to Grid Computing"*
//! (Douglas Thain and Miron Livny, HPDC-12, 2003): the **ftsh** fault
//! tolerant shell and the grid contention studies the paper evaluates.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`retry`] — the pure retry kernel: backoff, try budgets, and the
//!   Fixed/Aloha/Ethernet client disciplines;
//! * [`ftsh`] — the fault tolerant shell: lexer, parser, and a
//!   resumable virtual machine that runs identically against real
//!   processes and the simulator;
//! * [`procman`] — real POSIX execution: sessions, SIGTERM→SIGKILL
//!   escalation, deadline enforcement, capture-to-variable;
//! * [`simgrid`] — the discrete-event simulator with its resource
//!   models (kernel FD table, shared disk buffer, file servers);
//! * [`gridworld`] — the paper's three scenarios (job submission,
//!   output buffer, black-hole replica selection) wired end to end.
//!
//! ## Quickstart
//!
//! ```
//! use ethernet_grid::ftsh::{parse, SimClock, Vm, VmDriver};
//!
//! let script = parse(
//!     "try for 10 seconds\n\
//!        hello world\n\
//!      end\n",
//! )
//! .unwrap();
//!
//! // Drive the script with a toy executor: every command succeeds.
//! // A fixed seed makes the run (and this doctest) deterministic;
//! // `Vm::new` seeds backoff jitter from entropy instead.
//! let mut driver = VmDriver::new(Vm::with_seed(&script, 42), SimClock::new());
//! let outcome = driver.run_to_completion(|_cmd| Ok(String::new()));
//! assert!(outcome.success());
//! ```

pub use ftsh;
pub use gridworld;
pub use procman;
pub use retry;
pub use simgrid;
